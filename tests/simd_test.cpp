// Tests for the src/simd/ runtime-dispatch subsystem: tier selection and
// forcing, bit-exact parity of every kernel across all supported dispatch
// tiers (odd lengths, misaligned inputs, empty inputs, early-exit
// partials), the ScalarMix64 == Mix64 pin the hashing rewires rely on,
// and the engine-level bit-sketch prefilter golden (identical assignments
// with strictly fewer exact distance evaluations).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "lsh/bit_sketch.h"
#include "simd/dispatch.h"
#include "simd/kernel_table.h"
#include "util/rng.h"

namespace lshclust {
namespace {

// Restores the detected tier when a test that forces tiers exits, so test
// order never changes what the rest of the binary runs on.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceSimdTier(saved_); }

 private:
  simd::SimdTier saved_;
};

// The tiers whose kernels the running machine can execute. kScalar is
// always first, so parity loops compare every tier against it.
std::vector<simd::SimdTier> SupportedTiers() {
  std::vector<simd::SimdTier> tiers = {simd::SimdTier::kScalar};
  for (const simd::SimdTier tier :
       {simd::SimdTier::kSse42, simd::SimdTier::kAvx2}) {
    if (simd::TierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

// Lengths that exercise empty inputs, sub-block tails, exact block
// multiples, and off-by-one around every vector width and the 32-element
// bounded-mismatch block.
const uint32_t kLengths[] = {0,  1,  2,  3,  5,   7,   8,   9,   15, 16, 17,
                             31, 32, 33, 63, 64,  65,  96,  100, 127, 128,
                             129, 200, 257};

std::vector<uint32_t> RandomCodes(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out(count);
  for (auto& v : out) v = static_cast<uint32_t>(rng.Below(1u << 30));
  return out;
}

std::vector<double> RandomDoubles(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(count);
  for (auto& v : out) v = rng.NextDouble() * 8.0 - 4.0;
  return out;
}

TEST(SimdDispatchTest, DetectedTierIsSupportedAndNamed) {
  const simd::SimdTier tier = simd::ActiveTier();
  EXPECT_TRUE(simd::TierSupported(tier));
  EXPECT_STRNE(simd::TierName(tier), "");
  EXPECT_FALSE(simd::CpuFeatureString().empty());
}

TEST(SimdDispatchTest, ForceSimdTierSwitchesAndRejectsUnsupported) {
  TierGuard guard;
  // Scalar is supported everywhere.
  ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
  EXPECT_EQ(simd::ActiveTier(), simd::SimdTier::kScalar);
  EXPECT_STREQ(simd::TierName(simd::ActiveTier()), "scalar");
  for (const simd::SimdTier tier :
       {simd::SimdTier::kSse42, simd::SimdTier::kAvx2}) {
    if (simd::TierSupported(tier)) {
      EXPECT_TRUE(simd::ForceSimdTier(tier));
      EXPECT_EQ(simd::ActiveTier(), tier);
    } else {
      // An unsupported tier is refused and the active tier is unchanged.
      const simd::SimdTier before = simd::ActiveTier();
      EXPECT_FALSE(simd::ForceSimdTier(tier));
      EXPECT_EQ(simd::ActiveTier(), before);
    }
  }
}

TEST(SimdKernelParityTest, MismatchAllTiersAllLengthsAndAlignments) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t m : kLengths) {
    // +1 so the offset-1 view stays in bounds: unaligned uint32_t* inputs
    // are the common case (rows of a packed matrix).
    const auto a = RandomCodes(m + 1, 1000 + m);
    auto b = a;
    for (uint32_t j = 0; j < m + 1; j += 3) b[j] ^= 1u;
    for (const uint32_t offset : {0u, 1u}) {
      ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
      const uint32_t expected =
          simd::ActiveKernels().mismatch(a.data() + offset,
                                         b.data() + offset, m);
      for (const simd::SimdTier tier : tiers) {
        ASSERT_TRUE(simd::ForceSimdTier(tier));
        EXPECT_EQ(simd::ActiveKernels().mismatch(a.data() + offset,
                                                 b.data() + offset, m),
                  expected)
            << "tier=" << simd::TierName(tier) << " m=" << m
            << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelParityTest, BoundedMismatchEarlyExitPartialsMatch) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t m : kLengths) {
    const auto a = RandomCodes(m, 2000 + m);
    auto b = a;
    for (uint32_t j = 0; j < m; j += 2) b[j] ^= 1u;  // ~50% mismatches
    // Bounds below, at, and above the true distance exercise the
    // early-exit partial (whose value is part of the contract: every tier
    // checks the bound at the same 32-element block boundaries).
    for (const uint32_t bound : {0u, 1u, m / 4 + 1, m + 1}) {
      ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
      const uint32_t expected = simd::ActiveKernels().bounded_mismatch(
          a.data(), b.data(), m, bound);
      for (const simd::SimdTier tier : tiers) {
        ASSERT_TRUE(simd::ForceSimdTier(tier));
        EXPECT_EQ(simd::ActiveKernels().bounded_mismatch(a.data(), b.data(),
                                                         m, bound),
                  expected)
            << "tier=" << simd::TierName(tier) << " m=" << m
            << " bound=" << bound;
      }
    }
  }
}

TEST(SimdKernelParityTest, BoundedSquaredL2BitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t d : kLengths) {
    const auto x = RandomDoubles(d + 1, 3000 + d);
    const auto y = RandomDoubles(d + 1, 4000 + d);
    for (const uint32_t offset : {0u, 1u}) {
      for (const double bound : {0.5, 1e300}) {
        ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
        const double expected = simd::ActiveKernels().bounded_sql2(
            x.data() + offset, y.data() + offset, d, bound);
        for (const simd::SimdTier tier : tiers) {
          ASSERT_TRUE(simd::ForceSimdTier(tier));
          const double got = simd::ActiveKernels().bounded_sql2(
              x.data() + offset, y.data() + offset, d, bound);
          // Bit equality, not approximate: the blocked reduction order is
          // fixed across tiers by design.
          EXPECT_EQ(std::memcmp(&got, &expected, sizeof got), 0)
              << "tier=" << simd::TierName(tier) << " d=" << d
              << " offset=" << offset << " bound=" << bound
              << " got=" << got << " expected=" << expected;
        }
      }
    }
  }
}

TEST(SimdKernelParityTest, DotBitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t d : kLengths) {
    const auto x = RandomDoubles(d + 1, 5000 + d);
    const auto y = RandomDoubles(d + 1, 6000 + d);
    for (const uint32_t offset : {0u, 1u}) {
      ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
      const double expected = simd::ActiveKernels().dot(
          x.data() + offset, y.data() + offset, d);
      for (const simd::SimdTier tier : tiers) {
        ASSERT_TRUE(simd::ForceSimdTier(tier));
        const double got = simd::ActiveKernels().dot(x.data() + offset,
                                                     y.data() + offset, d);
        EXPECT_EQ(std::memcmp(&got, &expected, sizeof got), 0)
            << "tier=" << simd::TierName(tier) << " d=" << d
            << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelParityTest, MinHashScanAllTiers) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t n : kLengths) {
    // Step values around wrap-around behaviour: odd steps (the g1|1 the
    // hasher uses), huge steps that overflow, step 1.
    for (const uint64_t step : {1ull, 0x9E3779B97F4A7C15ull, ~0ull - 6}) {
      std::vector<uint64_t> init(n);
      Rng rng(7000 + n);
      for (auto& v : init) v = rng.Next();
      const uint64_t h0 = rng.Next();

      ASSERT_TRUE(simd::ForceSimdTier(simd::SimdTier::kScalar));
      std::vector<uint64_t> expected = init;
      simd::ActiveKernels().minhash_scan(expected.data(), n, h0, step);
      for (const simd::SimdTier tier : tiers) {
        ASSERT_TRUE(simd::ForceSimdTier(tier));
        std::vector<uint64_t> got = init;
        simd::ActiveKernels().minhash_scan(got.data(), n, h0, step);
        EXPECT_EQ(got, expected)
            << "tier=" << simd::TierName(tier) << " n=" << n
            << " step=" << step;
      }
    }
  }
}

TEST(SimdKernelParityTest, Mix64BatchAllTiersAndMatchesRngMix64) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t n : kLengths) {
    const auto tokens = RandomCodes(n + 1, 8000 + n);
    const uint64_t seed = 0x0123456789abcdefull + n;
    for (const uint32_t offset : {0u, 1u}) {
      // The reference is rng.h's Mix64 itself: the hashing layer swapped
      // its per-token loop for mix64_batch, which is only sound if the
      // kernel is a bit-for-bit copy of Mix64(seed ^ token).
      std::vector<uint64_t> expected(n);
      for (uint32_t i = 0; i < n; ++i) {
        expected[i] = Mix64(seed ^ tokens[i + offset]);
      }
      for (const simd::SimdTier tier : tiers) {
        ASSERT_TRUE(simd::ForceSimdTier(tier));
        std::vector<uint64_t> got(n);
        simd::ActiveKernels().mix64_batch(tokens.data() + offset, n, seed,
                                          got.data());
        EXPECT_EQ(got, expected)
            << "tier=" << simd::TierName(tier) << " n=" << n
            << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelParityTest, HammingWordsAllTiers) {
  TierGuard guard;
  const auto tiers = SupportedTiers();
  for (const uint32_t words : {0u, 1u, 2u, 3u, 7u, 8u, 64u}) {
    Rng rng(9000 + words);
    std::vector<uint64_t> a(words), b(words);
    for (auto& v : a) v = rng.Next();
    for (auto& v : b) v = rng.Next();
    uint64_t expected = 0;
    for (uint32_t w = 0; w < words; ++w) {
      expected += static_cast<uint64_t>(__builtin_popcountll(a[w] ^ b[w]));
    }
    for (const simd::SimdTier tier : tiers) {
      ASSERT_TRUE(simd::ForceSimdTier(tier));
      EXPECT_EQ(simd::ActiveKernels().hamming_words(a.data(), b.data(),
                                                    words),
                expected)
          << "tier=" << simd::TierName(tier) << " words=" << words;
    }
  }
}

// ------------------------------------------------- bit-sketch prefilter --

TEST(BitSketchTest, PackAndHammingRoundTrip) {
  const uint32_t width = 100;
  Rng rng(31);
  std::vector<uint64_t> sig_a(width), sig_b(width);
  for (auto& v : sig_a) v = rng.Next();
  for (auto& v : sig_b) v = rng.Next();

  BitSketchTable table;
  table.Reset(width);
  table.Append(sig_a);
  table.Append(sig_b);
  ASSERT_EQ(table.num_items(), 2u);
  ASSERT_EQ(table.words(), (width + 63) / 64);

  uint64_t expected = 0;
  for (uint32_t j = 0; j < width; ++j) {
    expected += (sig_a[j] & 1ull) != (sig_b[j] & 1ull) ? 1 : 0;
  }
  EXPECT_EQ(table.HammingTo(table.Row(0), 1), expected);
  EXPECT_EQ(table.HammingTo(table.Row(0), 0), 0u);
  EXPECT_EQ(table.HammingTo(table.Row(1), 0), expected);
}

TEST(BitSketchTest, ValidateSketchPrefilterRejectsBadFraction) {
  SketchPrefilterOptions options;
  options.max_hamming_fraction = 1.5;
  EXPECT_FALSE(ValidateSketchPrefilter(options, "test").ok());
  options.max_hamming_fraction = -0.1;
  EXPECT_FALSE(ValidateSketchPrefilter(options, "test").ok());
  options.max_hamming_fraction = 0.45;
  EXPECT_TRUE(ValidateSketchPrefilter(options, "test").ok());
}

// Engine-level golden: the same MH-K-Modes run with the prefilter off and
// on must produce bit-identical assignments while evaluating strictly
// fewer exact distances (and reporting what it pruned).
//
// Workload note: the screen only has work to do when shortlists contain
// spurious collisions. A small domain gives unrelated rules ~5% shared
// attributes (sketch Hamming ~ 49 > threshold 45) while same-rule peers
// share 80% (Hamming ~ 16) — a wide gap, so pruning is substantial and
// can never touch a cluster that could win the argmin. Two rows per band
// keeps the spurious collision rate low but nonzero.
TEST(SketchPrefilterGoldenTest, IdenticalAssignmentsFewerEvaluations) {
  ConjunctiveDataOptions data;
  data.num_items = 3000;
  data.num_attributes = 100;
  data.num_clusters = 300;
  data.domain_size = 20;
  data.min_rule_fraction = 0.8;
  data.max_rule_fraction = 0.8;
  data.seed = 11;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  MHKModesOptions options;
  options.engine.num_clusters = data.num_clusters;
  options.engine.max_iterations = 8;
  options.engine.seed = 7;
  options.engine.compute_cost = false;
  options.index.banding = {20, 2};

  options.index.sketch.enabled = false;
  const auto off = RunMHKModes(dataset, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off->result.exact_distances_pruned, 0u);

  options.index.sketch.enabled = true;
  const auto on = RunMHKModes(dataset, options);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(on->result.assignment, off->result.assignment);
  EXPECT_EQ(on->result.iterations.size(), off->result.iterations.size());
  EXPECT_LT(on->result.exact_distances_evaluated,
            off->result.exact_distances_evaluated);
  EXPECT_GT(on->result.exact_distances_pruned, 0u);
  // Every pruned candidate is an exact evaluation that did not happen.
  EXPECT_EQ(on->result.exact_distances_evaluated +
                on->result.exact_distances_pruned,
            off->result.exact_distances_evaluated);
}

}  // namespace
}  // namespace lshclust
