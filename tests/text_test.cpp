// Unit tests for src/text: tokenizer, per-topic TF-IDF, vocabulary
// selection and the binarizer (the §IV-B pipeline pieces).

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/corpus.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace lshclust {
namespace {

// -------------------------------------------------------------- tokenizer --

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  Tokenizer tokenizer;
  const auto tokens =
      tokenizer.TokenizeToStrings("Does a Zoologist work ONLY in zoo-land?");
  EXPECT_EQ(tokens, (std::vector<std::string>{"zoologist", "work", "zoo",
                                              "land"}));
}

TEST(TokenizerTest, DropsStopwordsAndSingleChars) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.IsStopword("the"));
  EXPECT_TRUE(tokenizer.IsStopword("im"));
  EXPECT_FALSE(tokenizer.IsStopword("zoologist"));
  const auto tokens = tokenizer.TokenizeToStrings("i am a x zoologist");
  EXPECT_EQ(tokens, (std::vector<std::string>{"zoologist"}));
}

TEST(TokenizerTest, PaperExampleKeepsContentWords) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.TokenizeToStrings(
      "im interested in being a zoologist but im not sure what do they "
      "really do.Does zoologist work only in zoo?");
  // The content words survive; the function words do not.
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "zoologist"),
            tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "zoo"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "im"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "the"), tokens.end());
}

TEST(TokenizerTest, EmptyAndPunctuationOnlyInputs) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.TokenizeToStrings("").empty());
  EXPECT_TRUE(tokenizer.TokenizeToStrings("?!.,;:").empty());
}

TEST(TokenizerTest, AddDocumentInternsWordsAndTracksTopics) {
  Tokenizer tokenizer;
  TokenizedCorpus corpus;
  tokenizer.AddDocument("zoologist zoo animals", 2, &corpus);
  tokenizer.AddDocument("zoo tickets prices", 1, &corpus);
  EXPECT_EQ(corpus.documents.size(), 2u);
  EXPECT_EQ(corpus.num_topics, 3u);  // max topic id + 1
  EXPECT_TRUE(corpus.Valid());
  // "zoo" appears in both documents under the same word id.
  ASSERT_EQ(corpus.documents[0].words.size(), 3u);
  ASSERT_EQ(corpus.documents[1].words.size(), 3u);
  EXPECT_EQ(corpus.documents[0].words[1], corpus.documents[1].words[0]);
}

// ------------------------------------------------------------------ tfidf --

/// Small hand-built corpus: topic 0 talks about zoos, topic 1 about tax;
/// "common" appears in both topics.
TokenizedCorpus HandCorpus() {
  Tokenizer tokenizer;
  TokenizedCorpus corpus;
  tokenizer.AddDocument("zoologist zoo animals common", 0, &corpus);
  tokenizer.AddDocument("zoo zookeeper animals common", 0, &corpus);
  tokenizer.AddDocument("taxes income deduction common", 1, &corpus);
  tokenizer.AddDocument("income taxes refund common", 1, &corpus);
  return corpus;
}

TEST(TfIdfTest, RejectsEmptyCorpus) {
  TokenizedCorpus corpus;
  EXPECT_TRUE(TopicTfIdf::Compute(corpus).status().IsInvalidArgument());
}

TEST(TfIdfTest, TopicFrequencyCounts) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  EXPECT_EQ(model.num_topics(), 2u);
  // Find the word ids.
  const auto find_word = [&](const std::string& word) {
    for (uint32_t w = 0; w < corpus.vocabulary.size(); ++w) {
      if (corpus.vocabulary[w] == word) return w;
    }
    ADD_FAILURE() << "word not found: " << word;
    return 0u;
  };
  EXPECT_EQ(model.TopicFrequency(find_word("zoo")), 1u);
  EXPECT_EQ(model.TopicFrequency(find_word("common")), 2u);
}

TEST(TfIdfTest, TopicExclusiveWordsOutscoreSharedWords) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  const auto find_word = [&](const std::string& word) {
    for (uint32_t w = 0; w < corpus.vocabulary.size(); ++w) {
      if (corpus.vocabulary[w] == word) return w;
    }
    return ~0u;
  };
  const uint32_t zoo = find_word("zoo");
  const uint32_t common = find_word("common");
  // "common" occurs in every topic: IDF (and hence score) is zero.
  EXPECT_DOUBLE_EQ(model.NormalizedIdf(common), 0.0);
  EXPECT_GT(model.NormalizedIdf(zoo), 0.0);
  EXPECT_GT(model.Score(0, zoo), model.Score(0, common));
  // "zoo" does not occur in topic 1 at all.
  EXPECT_DOUBLE_EQ(model.Score(1, zoo), 0.0);
}

TEST(TfIdfTest, ScoresAreInUnitInterval) {
  const auto corpus =
      GenerateYahooLikeCorpus([] {
        YahooCorpusOptions options;
        options.num_topics = 10;
        options.questions_per_topic = 10;
        options.seed = 31;
        return options;
      }());
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  for (uint32_t topic = 0; topic < 10; ++topic) {
    for (uint32_t w = 0; w < corpus.vocabulary.size(); w += 17) {
      const double score = model.Score(topic, w);
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
}

TEST(TfIdfTest, LowerThresholdGrowsVocabulary) {
  // The paper's lever: 0.7 -> 382 attributes, 0.3 -> 2881. Directionally,
  // lowering the threshold must (weakly) grow the vocabulary.
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 30;
  corpus_options.questions_per_topic = 20;
  corpus_options.seed = 17;
  const auto corpus = GenerateYahooLikeCorpus(corpus_options);
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();

  TfIdfOptions strict;
  strict.threshold = 0.7;
  TfIdfOptions loose;
  loose.threshold = 0.3;
  const auto small = model.SelectVocabulary(strict);
  const auto large = model.SelectVocabulary(loose);
  EXPECT_GT(large.size(), small.size());
  EXPECT_GT(small.size(), 0u);
  // Strict vocabulary is a subset of the loose one.
  for (const uint32_t word : small) {
    EXPECT_TRUE(std::binary_search(large.begin(), large.end(), word));
  }
}

TEST(TfIdfTest, VocabularyIsSortedAndUnique) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions options;
  options.threshold = 0.1;
  const auto vocabulary = model.SelectVocabulary(options);
  EXPECT_TRUE(std::is_sorted(vocabulary.begin(), vocabulary.end()));
  EXPECT_EQ(std::adjacent_find(vocabulary.begin(), vocabulary.end()),
            vocabulary.end());
}

TEST(TfIdfTest, PerTopicCapLimitsSelection) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions options;
  options.threshold = 0.01;
  options.max_words_per_topic = 1;
  const auto vocabulary = model.SelectVocabulary(options);
  // At most one word per topic can be selected.
  EXPECT_LE(vocabulary.size(), 2u);
  EXPECT_GE(vocabulary.size(), 1u);
}

// -------------------------------------------------------------- binarizer --

TEST(BinarizerTest, BuildsPresenceDatasetWithAugmentedNames) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions options;
  options.threshold = 0.2;
  const auto vocabulary = model.SelectVocabulary(options);
  ASSERT_GT(vocabulary.size(), 0u);

  const auto dataset = BinarizeCorpus(corpus, vocabulary).ValueOrDie();
  EXPECT_EQ(dataset.num_attributes(), vocabulary.size());
  EXPECT_EQ(dataset.num_codes(), 2 * vocabulary.size());
  EXPECT_TRUE(dataset.has_absence_semantics());
  EXPECT_TRUE(dataset.has_labels());

  // Values render as the paper's feature-name-augmented form "word=0/1".
  const std::string value = dataset.ValueToString(0, 0);
  EXPECT_TRUE(value.ends_with("=0") || value.ends_with("=1")) << value;

  // Present tokens of an item are exactly its vocabulary words.
  std::vector<uint32_t> tokens;
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    dataset.PresentTokens(i, &tokens);
    EXPECT_GT(tokens.size(), 0u);  // drop_empty_items guarantees this
    for (const uint32_t code : tokens) {
      EXPECT_EQ(code % 2, 1u);  // present codes are odd by construction
    }
  }
}

TEST(BinarizerTest, LabelsAreTopics) {
  const auto corpus = HandCorpus();
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions options;
  options.threshold = 0.2;
  const auto vocabulary = model.SelectVocabulary(options);
  const auto dataset = BinarizeCorpus(corpus, vocabulary,
                                      /*drop_empty_items=*/false)
                           .ValueOrDie();
  ASSERT_EQ(dataset.num_items(), corpus.documents.size());
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    EXPECT_EQ(dataset.labels()[i], corpus.documents[i].topic);
  }
}

TEST(BinarizerTest, DropEmptyItemsSkipsDocsWithoutVocabularyWords) {
  Tokenizer tokenizer;
  TokenizedCorpus corpus;
  tokenizer.AddDocument("alpha beta", 0, &corpus);
  tokenizer.AddDocument("gamma delta", 1, &corpus);  // no vocab words
  // Vocabulary = {alpha} only.
  const std::vector<uint32_t> vocabulary{0};
  const auto kept = BinarizeCorpus(corpus, vocabulary, true).ValueOrDie();
  EXPECT_EQ(kept.num_items(), 1u);
  const auto all = BinarizeCorpus(corpus, vocabulary, false).ValueOrDie();
  EXPECT_EQ(all.num_items(), 2u);
}

TEST(BinarizerTest, ValidatesInputs) {
  const auto corpus = HandCorpus();
  EXPECT_TRUE(BinarizeCorpus(corpus, std::vector<uint32_t>{})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(BinarizeCorpus(corpus, std::vector<uint32_t>{3, 1})
                  .status().IsInvalidArgument());  // unsorted
}

TEST(BinarizerTest, ErrorWhenNothingSurvives) {
  // A corpus whose only document contains no vocabulary word: dropping
  // empty items leaves nothing to cluster.
  TokenizedCorpus corpus;
  corpus.vocabulary = {"alpha"};
  corpus.documents.push_back(Document{0, {}});
  corpus.num_topics = 1;
  const std::vector<uint32_t> vocabulary{0};
  EXPECT_TRUE(BinarizeCorpus(corpus, vocabulary, true)
                  .status().IsInvalidArgument());
}

}  // namespace
}  // namespace lshclust
