// Unit tests for src/metrics: contingency table, purity, NMI, ARI.

#include <gtest/gtest.h>

#include <vector>

#include "metrics/metrics.h"

namespace lshclust {
namespace {

TEST(ContingencyTest, RejectsEmptyAndMismatchedInputs) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one{0};
  EXPECT_TRUE(ContingencyTable::Build(empty, empty)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(ContingencyTable::Build(one, empty)
                  .status().IsInvalidArgument());
}

TEST(ContingencyTest, CountsCellsAndMarginals) {
  const std::vector<uint32_t> clusters{0, 0, 1, 1, 1};
  const std::vector<uint32_t> labels{7, 7, 7, 9, 9};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_EQ(table.total(), 5u);
  EXPECT_EQ(table.num_clusters(), 2u);
  EXPECT_EQ(table.num_labels(), 2u);
  EXPECT_EQ(table.cluster_sizes(), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(table.label_sizes(), (std::vector<uint64_t>{3, 2}));
  EXPECT_EQ(table.cells().size(), 3u);  // (0,7)=2 (1,7)=1 (1,9)=2
}

TEST(ContingencyTest, SparseIdsAreDensified) {
  // Non-contiguous ids must not blow up the table.
  const std::vector<uint32_t> clusters{1000000, 5, 1000000};
  const std::vector<uint32_t> labels{42, 42, 7};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_EQ(table.num_clusters(), 2u);
  EXPECT_EQ(table.num_labels(), 2u);
}

TEST(PurityTest, PerfectClusteringScoresOne) {
  const std::vector<uint32_t> clusters{0, 0, 1, 1, 2, 2};
  const std::vector<uint32_t> labels{5, 5, 9, 9, 7, 7};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(table), 1.0);
}

TEST(PurityTest, HandComputedExample) {
  // Cluster 0: {a,a,b} majority 2; cluster 1: {b,b,a} majority 2.
  // Purity = (2+2)/6 = 2/3.
  const std::vector<uint32_t> clusters{0, 0, 0, 1, 1, 1};
  const std::vector<uint32_t> labels{0, 0, 1, 1, 1, 0};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(table), 2.0 / 3.0);
}

TEST(PurityTest, SingleClusterScoresMajorityFraction) {
  const std::vector<uint32_t> clusters{0, 0, 0, 0};
  const std::vector<uint32_t> labels{1, 1, 1, 2};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(table), 0.75);
}

TEST(PurityTest, AllSingletonsScoreOne) {
  // Purity is trivially 1 at k = n — the reason NMI/ARI are also provided.
  const std::vector<uint32_t> clusters{0, 1, 2, 3};
  const std::vector<uint32_t> labels{0, 0, 1, 1};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(table), 1.0);
}

TEST(PurityTest, InvariantToClusterRelabeling) {
  const std::vector<uint32_t> clusters_a{0, 0, 1, 1, 2};
  const std::vector<uint32_t> clusters_b{9, 9, 4, 4, 0};  // same partition
  const std::vector<uint32_t> labels{1, 1, 2, 2, 3};
  const auto ta = ContingencyTable::Build(clusters_a, labels).ValueOrDie();
  const auto tb = ContingencyTable::Build(clusters_b, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(ta), Purity(tb));
}

TEST(PurityTest, ConvenienceWrapper) {
  const std::vector<uint32_t> clusters{0, 0, 1, 1};
  const std::vector<uint32_t> labels{3, 3, 4, 4};
  EXPECT_DOUBLE_EQ(ComputePurity(clusters, labels).ValueOrDie(), 1.0);
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  const std::vector<uint32_t> clusters{0, 0, 1, 1, 2, 2};
  const std::vector<uint32_t> labels{4, 4, 5, 5, 6, 6};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_NEAR(NormalizedMutualInformation(table), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreNearZero) {
  // Perfectly balanced independent partitions: I(C;L) = 0.
  const std::vector<uint32_t> clusters{0, 0, 1, 1};
  const std::vector<uint32_t> labels{0, 1, 0, 1};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_NEAR(NormalizedMutualInformation(table), 0.0, 1e-12);
}

TEST(NmiTest, DegenerateSingleBlockPartitions) {
  const std::vector<uint32_t> clusters{0, 0, 0};
  const std::vector<uint32_t> labels{1, 1, 1};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(table), 1.0);
}

TEST(NmiTest, BetweenZeroAndOne) {
  const std::vector<uint32_t> clusters{0, 0, 0, 1, 1, 2};
  const std::vector<uint32_t> labels{0, 0, 1, 1, 2, 2};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  const double nmi = NormalizedMutualInformation(table);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(AriTest, IdenticalPartitionsScoreOne) {
  const std::vector<uint32_t> clusters{0, 0, 1, 1, 2, 2, 2};
  const std::vector<uint32_t> labels{9, 9, 5, 5, 6, 6, 6};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_NEAR(AdjustedRandIndex(table), 1.0, 1e-12);
}

TEST(AriTest, HandComputedExample) {
  // Classic example: clusters {a,a,b},{a,b,b}; labels {a,a,a},{b,b,b}.
  const std::vector<uint32_t> clusters{0, 0, 0, 1, 1, 1};
  const std::vector<uint32_t> labels{0, 0, 1, 0, 1, 1};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  // sum_cells C(2,2)*2 + ... : cells (0,0)=2,(0,1)=1,(1,0)=1,(1,1)=2
  // sum_cells = 1 + 0 + 0 + 1 = 2; clusters: 2*C(3,2)=6; labels: 6.
  // expected = 6*6/15 = 2.4; max = 6; ARI = (2-2.4)/(6-2.4) = -1/9.
  EXPECT_NEAR(AdjustedRandIndex(table), -1.0 / 9.0, 1e-12);
}

TEST(AriTest, CrossedPartitionsScoreNegative) {
  // Fully crossed partitions: sum_cells = 0, expected = 2/3, max = 2,
  // ARI = (0 - 2/3) / (2 - 2/3) = -0.5 — worse than chance.
  const std::vector<uint32_t> clusters{0, 0, 1, 1};
  const std::vector<uint32_t> labels{0, 1, 0, 1};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_NEAR(AdjustedRandIndex(table), -0.5, 1e-12);
}

TEST(AriTest, InvariantToRelabeling) {
  const std::vector<uint32_t> clusters_a{0, 0, 1, 2, 2};
  const std::vector<uint32_t> clusters_b{5, 5, 9, 1, 1};
  const std::vector<uint32_t> labels{0, 1, 1, 2, 2};
  const auto ta = ContingencyTable::Build(clusters_a, labels).ValueOrDie();
  const auto tb = ContingencyTable::Build(clusters_b, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(ta), AdjustedRandIndex(tb));
}

TEST(AriTest, SingleItem) {
  const std::vector<uint32_t> clusters{0};
  const std::vector<uint32_t> labels{3};
  const auto table = ContingencyTable::Build(clusters, labels).ValueOrDie();
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(table), 1.0);
}

}  // namespace
}  // namespace lshclust
