// Tests of the model persistence subsystem (src/persist/):
//
//  * Golden round-trips: a model saved by Snapshot + SaveFrozenModel and
//    reloaded via Clusterer::FromSnapshot (or LoadFrozenModel) routes
//    bit-identically to the fitted clusterer's PredictRouted, for every
//    index-carrying family, at fit threads {1, 4}, and under every SIMD
//    tier the host supports; exhaustive models round-trip to Predict.
//  * Zero re-hashing: a loaded index reports dataset_sign_passes() == 0 —
//    the buckets are adopted from the dump, never re-signed.
//  * Determinism: save -> load -> save is byte-identical.
//  * Corruption: truncation at every section boundary, bit flips in every
//    section, bad magic, wrong version, and inconsistent CSR dumps all
//    come back as clean Status errors.
//  * model file introspection (InspectModelFile), ModelServer
//    ::PublishFromFile, and the hardened dataset serializer
//    (data/serialize.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/clusterer.h"
#include "data/serialize.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "lsh/banded_index.h"
#include "persist/model_io.h"
#include "serving/frozen_model.h"
#include "serving/model_server.h"
#include "simd/dispatch.h"

namespace lshclust {
namespace {

// ------------------------------------------------------------ fixtures ----

CategoricalDataset CategoricalAll() {
  ConjunctiveDataOptions options;
  options.num_items = 360;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

CategoricalDataset SliceCategorical(const CategoricalDataset& all,
                                    uint32_t begin, uint32_t count) {
  const uint32_t m = all.num_attributes();
  std::vector<uint32_t> codes(
      all.codes().begin() + static_cast<size_t>(begin) * m,
      all.codes().begin() + static_cast<size_t>(begin + count) * m);
  return CategoricalDataset::FromCodes(count, m, all.num_codes(),
                                       std::move(codes))
      .ValueOrDie();
}

NumericDataset SliceNumeric(const NumericDataset& all, uint32_t begin,
                            uint32_t count) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(count) * all.dimensions());
  for (uint32_t item = begin; item < begin + count; ++item) {
    const auto row = all.Row(item);
    values.insert(values.end(), row.begin(), row.end());
  }
  return NumericDataset::FromValues(count, all.dimensions(), std::move(values))
      .ValueOrDie();
}

NumericDataset NumericAll() {
  GaussianMixtureOptions options;
  options.num_items = 300;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  return GenerateGaussianMixture(options).ValueOrDie();
}

MixedDataset MixedAll() {
  MixedDataOptions options;
  options.categorical.num_items = 260;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  return GenerateMixedData(options).ValueOrDie();
}

EngineOptions BaseEngine(uint32_t k, uint32_t threads) {
  EngineOptions engine;
  engine.num_clusters = k;
  engine.max_iterations = 6;
  engine.seed = 5;
  engine.num_threads = threads;
  engine.chunk_size = 64;
  return engine;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "persist_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Fits `spec`, saves the snapshot, reloads through both load paths, and
/// proves routing is bit-identical to the fitted clusterer on `arrivals`
/// — plus the zero-re-signing and spec-mirroring contracts.
template <typename Dataset>
void ExpectRoundTripParity(const ClustererSpec& spec, const Dataset& fit_data,
                           const Dataset& arrivals, const std::string& path) {
  auto fitted = Clusterer::Create(spec);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  ASSERT_TRUE(fitted->Fit(fit_data).ok());
  auto expected = fitted->PredictRouted(arrivals);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto snapshot = fitted->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path).ok());

  // Facade path: a warm-started Clusterer.
  auto loaded = Clusterer::FromSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->fitted());
  EXPECT_EQ(loaded->spec().modality, spec.modality);
  EXPECT_EQ(loaded->spec().accelerator, spec.accelerator);
  EXPECT_EQ(loaded->spec().engine.num_clusters, spec.engine.num_clusters);
  auto routed = loaded->PredictRouted(arrivals);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(*routed, *expected);

  // The loaded index was adopted from the dump, never re-signed: the
  // signing counter is 0 where the fitted clusterer's is >= 1.
  auto fitted_handle = fitted->index();
  ASSERT_TRUE(fitted_handle.ok());
  EXPECT_GE(fitted_handle->dataset_sign_passes(), 1u);
  auto loaded_handle = loaded->index();
  ASSERT_TRUE(loaded_handle.ok()) << loaded_handle.status().ToString();
  EXPECT_EQ(loaded_handle->dataset_sign_passes(), 0u);

  // Serving path: a routing-ready FrozenModel.
  auto model = serving::LoadFrozenModel(path);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto via_route = (*model)->Route(arrivals);
  ASSERT_TRUE(via_route.ok()) << via_route.status().ToString();
  EXPECT_EQ(*via_route, *expected);

  // A snapshot of the loaded clusterer routes like the original snapshot.
  auto resnapshot = loaded->Snapshot();
  ASSERT_TRUE(resnapshot.ok()) << resnapshot.status().ToString();
  auto via_resnapshot = (*resnapshot)->Route(arrivals);
  ASSERT_TRUE(via_resnapshot.ok());
  EXPECT_EQ(*via_resnapshot, *expected);
}

ClustererSpec MinHashSpec(uint32_t threads, bool sketch) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, threads);
  spec.minhash.banding = {8, 2};
  spec.minhash.sketch.enabled = sketch;
  return spec;
}

// --------------------------------------------------------- round trips ----

TEST(PersistRoundTripTest, CategoricalMinHashBitIdentical) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);
  for (const uint32_t threads : {1u, 4u}) {
    for (const bool sketch : {false, true}) {
      ExpectRoundTripParity(MinHashSpec(threads, sketch), fit_data, arrivals,
                            TempPath("minhash.lshm"));
    }
  }
}

TEST(PersistRoundTripTest, NumericSimHashBitIdentical) {
  const auto all = NumericAll();
  const auto fit_data = SliceNumeric(all, 0, 240);
  const auto arrivals = SliceNumeric(all, 240, 60);
  for (const uint32_t threads : {1u, 4u}) {
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.accelerator = Accelerator::kSimHash;
    spec.engine = BaseEngine(6, threads);
    spec.simhash.banding = {6, 3};
    ExpectRoundTripParity(spec, fit_data, arrivals,
                          TempPath("simhash.lshm"));
  }
}

TEST(PersistRoundTripTest, MixedConcatBitIdentical) {
  const auto all = MixedAll();
  const auto fit_data =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 0, 200),
                            SliceNumeric(all.numeric(), 0, 200))
          .ValueOrDie();
  const auto arrivals =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 200, 60),
                            SliceNumeric(all.numeric(), 200, 60))
          .ValueOrDie();
  for (const uint32_t threads : {1u, 4u}) {
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.accelerator = Accelerator::kMixedConcat;
    spec.engine = BaseEngine(5, threads);
    spec.gamma = 0.5;
    spec.mixed_index.categorical_banding = {8, 2};
    spec.mixed_index.numeric_banding = {4, 8};
    ExpectRoundTripParity(spec, fit_data, arrivals, TempPath("mixed.lshm"));
  }
}

TEST(PersistRoundTripTest, ExhaustiveModelsRoundTripToPredict) {
  const std::string path = TempPath("exhaustive.lshm");
  {
    const auto all = CategoricalAll();
    const auto fit_data = SliceCategorical(all, 0, 300);
    const auto arrivals = SliceCategorical(all, 300, 60);
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.engine = BaseEngine(8, 1);
    auto fitted = Clusterer::Create(spec);
    ASSERT_TRUE(fitted.ok());
    ASSERT_TRUE(fitted->Fit(fit_data).ok());
    auto snapshot = fitted->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path).ok());

    // An exhaustive file carries exactly model_info + centroids.
    auto info = persist::InspectModelFile(path);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->sections.size(), 2u);
    EXPECT_EQ(info->sections[0].id, 1u);
    EXPECT_EQ(info->sections[1].id, 2u);

    auto loaded = Clusterer::FromSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->spec().accelerator, Accelerator::kExhaustive);
    EXPECT_EQ(*loaded->PredictRouted(arrivals), *fitted->Predict(arrivals));
  }
  {
    const auto all = NumericAll();
    const auto fit_data = SliceNumeric(all, 0, 240);
    const auto arrivals = SliceNumeric(all, 240, 60);
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.engine = BaseEngine(6, 1);
    spec.engine.init_method = InitMethod::kRandom;
    auto fitted = Clusterer::Create(spec);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    ASSERT_TRUE(fitted->Fit(fit_data).ok());
    auto snapshot = fitted->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path).ok());
    auto loaded = Clusterer::FromSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded->Predict(arrivals), *fitted->Predict(arrivals));
  }
  {
    const auto all = MixedAll();
    const auto fit_data =
        MixedDataset::Combine(SliceCategorical(all.categorical(), 0, 200),
                              SliceNumeric(all.numeric(), 0, 200))
            .ValueOrDie();
    const auto arrivals =
        MixedDataset::Combine(SliceCategorical(all.categorical(), 200, 60),
                              SliceNumeric(all.numeric(), 200, 60))
            .ValueOrDie();
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.engine = BaseEngine(5, 1);
    spec.engine.init_method = InitMethod::kRandom;
    spec.gamma = 0.5;
    auto fitted = Clusterer::Create(spec);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    ASSERT_TRUE(fitted->Fit(fit_data).ok());
    auto snapshot = fitted->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path).ok());
    auto loaded = Clusterer::FromSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->spec().gamma, 0.5);
    EXPECT_EQ(*loaded->Predict(arrivals), *fitted->Predict(arrivals));
  }
}

// Routing kernels are bit-identical across dispatch tiers, and a loaded
// model must be too: under every tier the host supports, a model saved
// under the default tier routes exactly like the fitted clusterer.
TEST(PersistRoundTripTest, LoadedModelMatchesAcrossSimdTiers) {
  struct TierGuard {
    simd::SimdTier saved = simd::ActiveTier();
    ~TierGuard() { simd::ForceSimdTier(saved); }
  } guard;

  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);
  const std::string path = TempPath("tiers.lshm");

  auto fitted = Clusterer::Create(MinHashSpec(1, true));
  ASSERT_TRUE(fitted.ok());
  ASSERT_TRUE(fitted->Fit(fit_data).ok());
  auto snapshot = fitted->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path).ok());

  for (const simd::SimdTier tier :
       {simd::SimdTier::kScalar, simd::SimdTier::kSse42,
        simd::SimdTier::kAvx2, simd::SimdTier::kAvx512}) {
    if (!simd::TierSupported(tier)) continue;
    SCOPED_TRACE(simd::TierName(tier));
    ASSERT_TRUE(simd::ForceSimdTier(tier));
    auto loaded = Clusterer::FromSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded->PredictRouted(arrivals),
              *fitted->PredictRouted(arrivals));
  }
}

TEST(PersistRoundTripTest, SaveLoadSaveIsByteIdentical) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const std::string first = TempPath("first.lshm");
  const std::string second = TempPath("second.lshm");

  auto fitted = Clusterer::Create(MinHashSpec(1, true));
  ASSERT_TRUE(fitted.ok());
  ASSERT_TRUE(fitted->Fit(fit_data).ok());
  auto snapshot = fitted->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, first).ok());

  auto model = serving::LoadFrozenModel(first);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(serving::SaveFrozenModel(**model, second).ok());
  EXPECT_EQ(ReadFileBytes(first), ReadFileBytes(second));
}

// ----------------------------------------------------------- corruption ----

/// A small saved model every corruption test mutilates a copy of.
class PersistCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto all = CategoricalAll();
    const auto fit_data = SliceCategorical(all, 0, 300);
    auto fitted = Clusterer::Create(MinHashSpec(1, true));
    ASSERT_TRUE(fitted.ok());
    ASSERT_TRUE(fitted->Fit(fit_data).ok());
    auto snapshot = fitted->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    path_ = TempPath("corrupt.lshm");
    ASSERT_TRUE(serving::SaveFrozenModel(**snapshot, path_).ok());
    bytes_ = ReadFileBytes(path_);
    auto info = persist::InspectModelFile(path_);
    ASSERT_TRUE(info.ok());
    info_ = *info;
    ASSERT_EQ(info_.sections.size(), 6u);  // minhash + sketches: all six
  }

  /// Writes `bytes` to a scratch path and expects both load paths to fail
  /// with a clean error.
  void ExpectRejected(const std::string& bytes, const std::string& label) {
    SCOPED_TRACE(label);
    const std::string path = TempPath("mutated.lshm");
    WriteFileBytes(path, bytes);
    auto decoded = persist::DecodeModelFile(path);
    EXPECT_FALSE(decoded.ok());
    auto model = serving::LoadFrozenModel(path);
    EXPECT_FALSE(model.ok());
    auto loaded = Clusterer::FromSnapshot(path);
    EXPECT_FALSE(loaded.ok());
  }

  std::string path_;
  std::string bytes_;
  persist::ModelFileInfo info_;
};

TEST_F(PersistCorruptionTest, RejectsBadMagicAndWrongVersion) {
  std::string bad_magic = bytes_;
  bad_magic[0] = 'X';
  ExpectRejected(bad_magic, "bad magic");

  std::string wrong_version = bytes_;
  wrong_version[4] = 99;
  ExpectRejected(wrong_version, "wrong version");

  ExpectRejected("", "empty file");
  ExpectRejected("LSH", "shorter than the magic");
}

TEST_F(PersistCorruptionTest, RejectsTruncationAtEverySectionBoundary) {
  // Mid-header, mid-TOC, then at and just before every section boundary.
  ExpectRejected(bytes_.substr(0, 8), "mid-header");
  ExpectRejected(bytes_.substr(0, 12 + 7), "mid-TOC");
  for (const auto& section : info_.sections) {
    SCOPED_TRACE(persist::SectionName(section.id));
    ExpectRejected(bytes_.substr(0, section.offset), "at section start");
    ExpectRejected(bytes_.substr(0, section.offset + section.size - 1),
                   "one byte short of section end");
  }
}

TEST_F(PersistCorruptionTest, BitFlipInAnySectionFailsItsChecksum) {
  for (const auto& section : info_.sections) {
    SCOPED_TRACE(persist::SectionName(section.id));
    std::string flipped = bytes_;
    flipped[section.offset + section.size / 2] ^= 0x40;
    const std::string path = TempPath("flipped.lshm");
    WriteFileBytes(path, flipped);

    auto decoded = persist::DecodeModelFile(path);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().ToString().find("checksum"), std::string::npos)
        << decoded.status().ToString();

    // InspectModelFile localizes the corruption instead of failing.
    auto info = persist::InspectModelFile(path);
    ASSERT_TRUE(info.ok());
    for (const auto& inspected : info->sections) {
      EXPECT_EQ(inspected.crc_ok, inspected.id != section.id);
    }
  }
}

TEST_F(PersistCorruptionTest, FromRawRejectsInconsistentCsrState) {
  auto decoded = persist::DecodeModelFile(path_);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_index);
  const BandedIndex::Raw& good = decoded->index_raw;

  {
    BandedIndex::Raw raw = good;
    raw.bands[0].bucket_offsets.back() = raw.num_items - 1;
    EXPECT_FALSE(BandedIndex::FromRaw(std::move(raw)).ok());
  }
  {
    BandedIndex::Raw raw = good;
    raw.bands[0].bucket_items[0] = raw.num_items;  // out of range
    EXPECT_FALSE(BandedIndex::FromRaw(std::move(raw)).ok());
  }
  {
    BandedIndex::Raw raw = good;
    raw.bands[1].offset += 1;  // bands no longer tile the signature
    EXPECT_FALSE(BandedIndex::FromRaw(std::move(raw)).ok());
  }
  {
    BandedIndex::Raw raw = good;
    if (raw.bands[0].bucket_offsets.size() > 2) {
      std::swap(raw.bands[0].bucket_offsets[1],
                raw.bands[0].bucket_offsets[2]);
      // Either non-monotone offsets or a broken item/bucket agreement.
      EXPECT_FALSE(BandedIndex::FromRaw(std::move(raw)).ok());
    }
  }
  // The untouched dump still reconstructs.
  BandedIndex::Raw raw = good;
  EXPECT_TRUE(BandedIndex::FromRaw(std::move(raw)).ok());
}

TEST_F(PersistCorruptionTest, MissingFileIsACleanError) {
  auto loaded = Clusterer::FromSnapshot(TempPath("does_not_exist.lshm"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status().ToString();
}

// ----------------------------------------------------------- inspection ----

TEST_F(PersistCorruptionTest, InspectReportsTheFullTableOfContents) {
  EXPECT_EQ(info_.format_version, 1u);
  EXPECT_EQ(info_.file_size, bytes_.size());
  uint64_t expected_offset = info_.sections.front().offset;
  for (size_t i = 0; i < info_.sections.size(); ++i) {
    const auto& section = info_.sections[i];
    EXPECT_EQ(section.id, i + 1);  // all six, in id order
    EXPECT_EQ(section.offset, expected_offset);
    EXPECT_TRUE(section.crc_ok);
    expected_offset += section.size;
  }
  EXPECT_EQ(expected_offset, bytes_.size());
  EXPECT_STREQ(persist::SectionName(1), "model_info");
  EXPECT_STREQ(persist::SectionName(6), "assignment");
  EXPECT_STREQ(persist::SectionName(99), "unknown");
}

// ------------------------------------------------------ publish-from-file ----

TEST_F(PersistCorruptionTest, PublishFromFileStampsAndServes) {
  serving::ModelServer server;
  auto version = server.PublishFromFile(path_);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1u);
  auto model = server.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->version(), 1u);
  EXPECT_TRUE(model->has_index());

  // A failed load leaves the published snapshot untouched.
  auto bad = server.PublishFromFile(TempPath("does_not_exist.lshm"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(server.Acquire(), model);
  EXPECT_EQ(server.version(), 1u);
}

// ------------------------------------------------- dataset serializer ----

TEST(DatasetSerializeHardeningTest, RejectsTruncationAndBadShapes) {
  const auto dataset = CategoricalAll();
  const std::string path = TempPath("dataset.lshc");
  ASSERT_TRUE(SaveDatasetBinary(dataset, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(LoadDatasetBinary(path).ok());

  const std::string mutated = TempPath("dataset_mutated.lshc");
  for (const size_t keep :
       {size_t{0}, size_t{3}, size_t{10}, bytes.size() / 2,
        bytes.size() - 1}) {
    SCOPED_TRACE(keep);
    WriteFileBytes(mutated, bytes.substr(0, keep));
    EXPECT_FALSE(LoadDatasetBinary(mutated).ok());
  }

  // num_codes (offset 16) smaller than stored codes: out-of-range codes.
  std::string bad_codes = bytes;
  bad_codes[16] = 1;
  bad_codes[17] = bad_codes[18] = bad_codes[19] = 0;
  WriteFileBytes(mutated, bad_codes);
  EXPECT_FALSE(LoadDatasetBinary(mutated).ok());

  // Implausibly huge item count: must fail cleanly, not allocate wild.
  std::string bad_items = bytes;
  bad_items[8] = bad_items[9] = bad_items[10] = bad_items[11] =
      static_cast<char>(0xFF);
  WriteFileBytes(mutated, bad_items);
  EXPECT_FALSE(LoadDatasetBinary(mutated).ok());
}

}  // namespace
}  // namespace lshclust
