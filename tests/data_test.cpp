// Unit tests for src/data: interner, dataset builder/factory, presence
// semantics, CSV I/O and binary serialization (including failure cases).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/categorical_dataset.h"
#include "data/csv.h"
#include "data/interner.h"
#include "data/serialize.h"

namespace lshclust {
namespace {

// ---------------------------------------------------------------- interner --

TEST(InternerTest, AssignsDenseCodesInOrder) {
  ValueInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);  // idempotent
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, RoundTripsStrings) {
  ValueInterner interner;
  const uint32_t code = interner.Intern("colour=blue");
  EXPECT_EQ(interner.ToString(code), "colour=blue");
}

TEST(InternerTest, LookupWithoutInsert) {
  ValueInterner interner;
  interner.Intern("present");
  EXPECT_EQ(interner.Lookup("present"), 0u);
  EXPECT_EQ(interner.Lookup("absent"), ValueInterner::kNotFound);
}

TEST(InternerTest, MakeToken) {
  EXPECT_EQ(ValueInterner::MakeToken("zoo", "1"), "zoo=1");
  EXPECT_EQ(ValueInterner::MakeToken("colour", "blue"), "colour=blue");
}

TEST(InternerTest, ManyDistinctValues) {
  ValueInterner interner;
  for (uint32_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(interner.Intern("v" + std::to_string(i)), i);
  }
  EXPECT_EQ(interner.size(), 10000u);
  EXPECT_EQ(interner.ToString(9999), "v9999");
}

// ----------------------------------------------------------------- builder --

TEST(DatasetBuilderTest, BuildsRowsAndLabels) {
  CategoricalDatasetBuilder builder({"colour", "size"});
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"blue", "large"}, 0).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"red", "small"}, 1).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"blue", "small"}, 0).ok());
  const CategoricalDataset dataset = std::move(builder).Build();

  EXPECT_EQ(dataset.num_items(), 3u);
  EXPECT_EQ(dataset.num_attributes(), 2u);
  EXPECT_EQ(dataset.num_codes(), 4u);  // blue, large, red, small
  EXPECT_TRUE(dataset.has_labels());
  EXPECT_EQ(dataset.labels(), (std::vector<uint32_t>{0, 1, 0}));
  // Rows 0 and 2 share the colour code but differ in size.
  EXPECT_EQ(dataset.Row(0)[0], dataset.Row(2)[0]);
  EXPECT_NE(dataset.Row(0)[1], dataset.Row(2)[1]);
  EXPECT_EQ(dataset.ValueToString(0, 0), "colour=blue");
}

TEST(DatasetBuilderTest, RejectsWrongArity) {
  CategoricalDatasetBuilder builder({"a", "b"});
  EXPECT_TRUE(builder.AddRow(std::vector<std::string>{"x"})
                  .IsInvalidArgument());
  EXPECT_TRUE(builder.AddRow(std::vector<std::string>{"x", "y", "z"})
                  .IsInvalidArgument());
}

TEST(DatasetBuilderTest, RejectsMixedLabelPresence) {
  CategoricalDatasetBuilder builder({"a"});
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"x"}, 1).ok());
  EXPECT_TRUE(builder.AddRow(std::vector<std::string>{"y"})
                  .IsInvalidArgument());
}

TEST(DatasetBuilderTest, SameValueDifferentAttributeGetsDistinctCodes) {
  CategoricalDatasetBuilder builder({"a", "b"});
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"yes", "yes"}).ok());
  const CategoricalDataset dataset = std::move(builder).Build();
  // "a=yes" and "b=yes" must not alias as MinHash tokens.
  EXPECT_NE(dataset.Row(0)[0], dataset.Row(0)[1]);
}

TEST(DatasetBuilderTest, AbsenceSemantics) {
  CategoricalDatasetBuilder builder({"cat", "dog", "fox"});
  builder.MarkAbsentValue("0");
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"1", "0", "1"}).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"0", "0", "0"}).ok());
  const CategoricalDataset dataset = std::move(builder).Build();

  EXPECT_TRUE(dataset.has_absence_semantics());
  std::vector<uint32_t> tokens;
  EXPECT_EQ(dataset.PresentTokens(0, &tokens), 2u);  // cat=1, fox=1
  EXPECT_EQ(dataset.PresentTokens(1, &tokens), 0u);  // nothing present
}

TEST(DatasetBuilderTest, NoAbsenceMeansAllPresent) {
  CategoricalDatasetBuilder builder({"x", "y"});
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"1", "2"}).ok());
  const CategoricalDataset dataset = std::move(builder).Build();
  EXPECT_FALSE(dataset.has_absence_semantics());
  std::vector<uint32_t> tokens;
  EXPECT_EQ(dataset.PresentTokens(0, &tokens), 2u);
  for (uint32_t code = 0; code < dataset.num_codes(); ++code) {
    EXPECT_TRUE(dataset.IsPresent(code));
  }
}

// ---------------------------------------------------------------- FromCodes --

TEST(FromCodesTest, ValidatesMatrixSize) {
  EXPECT_TRUE(CategoricalDataset::FromCodes(2, 3, 10, {0, 1, 2, 3})
                  .status().IsInvalidArgument());
}

TEST(FromCodesTest, ValidatesCodeRange) {
  EXPECT_TRUE(CategoricalDataset::FromCodes(1, 2, 3, {0, 5})
                  .status().IsOutOfRange());
}

TEST(FromCodesTest, ValidatesLabelLength) {
  EXPECT_TRUE(CategoricalDataset::FromCodes(2, 1, 3, {0, 1}, {0})
                  .status().IsInvalidArgument());
}

TEST(FromCodesTest, ValidatesAbsenceLength) {
  EXPECT_TRUE(CategoricalDataset::FromCodes(1, 1, 3, {0}, {}, {true})
                  .status().IsInvalidArgument());
}

TEST(FromCodesTest, BuildsValidDataset) {
  auto result = CategoricalDataset::FromCodes(2, 2, 4, {0, 1, 2, 3}, {7, 9});
  ASSERT_TRUE(result.ok());
  const CategoricalDataset& dataset = *result;
  EXPECT_EQ(dataset.num_items(), 2u);
  EXPECT_EQ(dataset.num_attributes(), 2u);
  EXPECT_EQ(dataset.Row(1)[0], 2u);
  EXPECT_EQ(dataset.labels(), (std::vector<uint32_t>{7, 9}));
  EXPECT_EQ(dataset.ValueToString(1, 0), "#2");  // no interner
}

// --------------------------------------------------------------------- CSV --

constexpr const char* kCsvText =
    "colour,size,label\n"
    "blue,large,0\n"
    "red,small,1\n"
    "blue,small,0\n";

TEST(CsvTest, ParsesHeaderRowsAndLabels) {
  auto result = ParseCategoricalCsv(kCsvText);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CategoricalDataset& dataset = *result;
  EXPECT_EQ(dataset.num_items(), 3u);
  EXPECT_EQ(dataset.num_attributes(), 2u);
  EXPECT_EQ(dataset.labels(), (std::vector<uint32_t>{0, 1, 0}));
  EXPECT_EQ(dataset.ValueToString(1, 0), "colour=red");
}

TEST(CsvTest, LabelColumnPositionIsFlexible) {
  auto result = ParseCategoricalCsv(
      "label,a,b\n"
      "3,x,y\n"
      "4,z,w\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels(), (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(result->num_attributes(), 2u);
}

TEST(CsvTest, NoLabelColumnMeansUnlabeled) {
  auto result = ParseCategoricalCsv("a,b\nx,y\n");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_labels());
}

TEST(CsvTest, SkipsBlankLinesAndTrimsFields) {
  auto result = ParseCategoricalCsv("a , b \n x , y \n\n z , w \n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_items(), 2u);
  EXPECT_EQ(result->ValueToString(0, 0), "a=x");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCategoricalCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_attributes(), 2u);
}

TEST(CsvTest, AbsentValuesFlowThrough) {
  CsvOptions options;
  options.absent_values = {"No"};
  auto result = ParseCategoricalCsv(
      "w1,w2\n"
      "Yes,No\n"
      "No,Yes\n",
      options);
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> tokens;
  EXPECT_EQ(result->PresentTokens(0, &tokens), 1u);
}

TEST(CsvTest, ErrorOnEmptyInput) {
  EXPECT_TRUE(ParseCategoricalCsv("").status().IsInvalidArgument());
}

TEST(CsvTest, ErrorOnHeaderOnly) {
  EXPECT_TRUE(ParseCategoricalCsv("a,b\n").status().IsInvalidArgument());
}

TEST(CsvTest, ErrorOnFieldCountMismatch) {
  const auto status = ParseCategoricalCsv("a,b\nx\n").status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ErrorOnNonIntegerLabel) {
  EXPECT_TRUE(ParseCategoricalCsv("a,label\nx,lots\n")
                  .status().IsInvalidArgument());
}

TEST(CsvTest, ErrorOnNegativeLabel) {
  EXPECT_TRUE(ParseCategoricalCsv("a,label\nx,-1\n")
                  .status().IsInvalidArgument());
}

TEST(CsvTest, ErrorOnDuplicateLabelColumn) {
  EXPECT_TRUE(ParseCategoricalCsv("label,label\n1,2\n")
                  .status().IsInvalidArgument());
}

TEST(CsvTest, ErrorOnOnlyLabelColumn) {
  EXPECT_TRUE(ParseCategoricalCsv("label\n1\n")
                  .status().IsInvalidArgument());
}

TEST(CsvTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadCategoricalCsv("/nonexistent/path.csv")
                  .status().IsIOError());
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lshclust_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteThenReadRoundTrips) {
  auto original = ParseCategoricalCsv(kCsvText);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(WriteCategoricalCsv(*original, path_.string()).ok());

  auto reloaded = ReadCategoricalCsv(path_.string());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_items(), original->num_items());
  EXPECT_EQ(reloaded->num_attributes(), original->num_attributes());
  EXPECT_EQ(reloaded->labels(), original->labels());
  for (uint32_t i = 0; i < original->num_items(); ++i) {
    for (uint32_t a = 0; a < original->num_attributes(); ++a) {
      EXPECT_EQ(reloaded->ValueToString(i, a), original->ValueToString(i, a));
    }
  }
}

TEST_F(CsvFileTest, WriteRequiresInterner) {
  auto dataset = CategoricalDataset::FromCodes(1, 1, 2, {1});
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(WriteCategoricalCsv(*dataset, path_.string())
                  .IsInvalidArgument());
}

TEST_F(CsvFileTest, ReadNumericCsvParsesValuesAndLabels) {
  std::ofstream(path_) << "x,y,label\n 1.0 ,2.5,0\n-3.0,4e2,1\n";
  auto dataset = ReadNumericCsv(path_.string());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_items(), 2u);
  EXPECT_EQ(dataset->dimensions(), 2u);
  EXPECT_EQ(dataset->Row(0)[0], 1.0);
  EXPECT_EQ(dataset->Row(1)[1], 400.0);
  EXPECT_EQ(dataset->labels(), (std::vector<uint32_t>{0, 1}));
}

TEST_F(CsvFileTest, ReadNumericCsvRejectsNonNumericColumn) {
  std::ofstream(path_) << "x,y\n1.0,2.0\ncat,3.0\n";
  Status status = ReadNumericCsv(path_.string()).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("column 'x'"), std::string::npos);
}

TEST_F(CsvFileTest, ReadNumericCsvRejectsNonFiniteCells) {
  // Pandas-style missing values must error, not poison the objective.
  std::ofstream(path_) << "x,y\n1.0,2.0\n3.0,NaN\n";
  EXPECT_TRUE(ReadNumericCsv(path_.string()).status().IsInvalidArgument());

  std::ofstream(path_, std::ios::trunc) << "x,y\n1.0,inf\n3.0,4.0\n";
  EXPECT_TRUE(ReadNumericCsv(path_.string()).status().IsInvalidArgument());
}

TEST_F(CsvFileTest, ReadMixedCsvTreatsNonFiniteColumnAsCategorical) {
  std::ofstream(path_) << "name,score\nalice,NaN\nbob,2.0\n";
  auto dataset = ReadMixedCsv(path_.string());
  // 'score' holds a NaN, so it cannot be a numeric feature — the file
  // degenerates to all-categorical, which mixed data rejects.
  EXPECT_TRUE(dataset.status().IsInvalidArgument());
}

TEST_F(CsvFileTest, ReadMixedCsvSplitsColumnsByType) {
  std::ofstream(path_) << "plan,mrr,region,usage,label\n"
                          "pro, 10.5 ,eu,100.0,0\nfree,0.0,us,5.0,1\n";
  auto dataset = ReadMixedCsv(path_.string());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_items(), 2u);
  EXPECT_EQ(dataset->num_categorical(), 2u);  // plan, region
  EXPECT_EQ(dataset->num_numeric(), 2u);      // mrr, usage
  EXPECT_EQ(dataset->numeric().Row(0)[0], 10.5);
  EXPECT_EQ(dataset->labels(), (std::vector<uint32_t>{0, 1}));
}

TEST_F(CsvFileTest, ReadMixedCsvNeedsBothColumnKinds) {
  std::ofstream(path_) << "x,y\n1.0,2.0\n3.0,4.0\n";
  Status status = ReadMixedCsv(path_.string()).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("at least one of each"),
            std::string::npos);
}

// ----------------------------------------------------------- binary format --

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lshclust_bin_test_" + std::to_string(::getpid()) + ".lshc");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(SerializeTest, RoundTripsCodesLabelsAbsenceAndDictionary) {
  CategoricalDatasetBuilder builder({"w1", "w2", "w3"});
  builder.MarkAbsentValue("0");
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"1", "0", "1"}, 5).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"0", "1", "0"}, 6).ok());
  const CategoricalDataset original = std::move(builder).Build();

  ASSERT_TRUE(SaveDatasetBinary(original, path_.string()).ok());
  auto reloaded = LoadDatasetBinary(path_.string());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  EXPECT_EQ(reloaded->num_items(), original.num_items());
  EXPECT_EQ(reloaded->num_attributes(), original.num_attributes());
  EXPECT_EQ(reloaded->num_codes(), original.num_codes());
  EXPECT_EQ(reloaded->labels(), original.labels());
  EXPECT_TRUE(reloaded->has_absence_semantics());
  for (uint32_t code = 0; code < original.num_codes(); ++code) {
    EXPECT_EQ(reloaded->IsPresent(code), original.IsPresent(code));
  }
  ASSERT_NE(reloaded->interner(), nullptr);
  EXPECT_EQ(reloaded->ValueToString(0, 0), original.ValueToString(0, 0));
  std::vector<uint32_t> a, b;
  original.PresentTokens(0, &a);
  reloaded->PresentTokens(0, &b);
  EXPECT_EQ(a, b);
}

TEST_F(SerializeTest, RoundTripsRawCodeDataset) {
  auto original = CategoricalDataset::FromCodes(3, 2, 7, {0, 6, 1, 5, 2, 4});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveDatasetBinary(*original, path_.string()).ok());
  auto reloaded = LoadDatasetBinary(path_.string());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->has_labels());
  EXPECT_EQ(reloaded->interner(), nullptr);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t a = 0; a < 2; ++a) {
      EXPECT_EQ(reloaded->Row(i)[a], original->Row(i)[a]);
    }
  }
}

TEST_F(SerializeTest, RejectsGarbageFile) {
  std::ofstream out(path_);
  out << "this is not a dataset";
  out.close();
  EXPECT_TRUE(LoadDatasetBinary(path_.string()).status().IsInvalidArgument());
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  auto original = CategoricalDataset::FromCodes(4, 4, 9,
                                                std::vector<uint32_t>(16, 3));
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveDatasetBinary(*original, path_.string()).ok());
  // Truncate to the first 20 bytes (header survives, codes do not).
  std::filesystem::resize_file(path_, 20);
  EXPECT_FALSE(LoadDatasetBinary(path_.string()).ok());
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadDatasetBinary("/no/such/file.lshc").status().IsIOError());
}

}  // namespace
}  // namespace lshclust
