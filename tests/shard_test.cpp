// Tests for the shard subsystem (src/shard/): the two-level
// (shard -> chunk) decomposition must cover the item range exactly once,
// be a pure function of its inputs, degenerate to the flat chunk
// decomposition at S=1, and survive the edge cases the engine and
// streaming ingest rely on (more shards than items, empty ranges,
// 1-item chunks).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "shard/shard_executor.h"
#include "shard/shard_plan.h"
#include "shard/sharded_accumulator.h"
#include "util/thread_pool.h"

namespace lshclust {
namespace {

// Walks every chunk and checks it tiles [0, n) in order, that chunk
// ranges stay inside their shard, and that no chunk exceeds chunk_size.
void ExpectExactTiling(const ShardPlan& plan) {
  uint32_t expected_begin = 0;
  for (uint32_t index = 0; index < plan.num_chunks(); ++index) {
    const ShardPlan::Chunk chunk = plan.chunk(index);
    EXPECT_EQ(chunk.begin, expected_begin) << "chunk " << index;
    EXPECT_GT(chunk.end, chunk.begin) << "chunk " << index;
    EXPECT_LE(chunk.end - chunk.begin, plan.chunk_size()) << "chunk " << index;
    const ShardSlice slice = plan.shard(chunk.shard);
    EXPECT_GE(chunk.begin, slice.begin) << "chunk " << index;
    EXPECT_LE(chunk.end, slice.end) << "chunk " << index;
    expected_begin = chunk.end;
  }
  EXPECT_EQ(expected_begin, plan.num_items());
}

TEST(ShardPlanTest, ShardsPartitionTheRangeContiguously) {
  for (const uint32_t n : {0u, 1u, 5u, 64u, 1000u, 4097u}) {
    for (const uint32_t shards : {1u, 2u, 3u, 8u, 13u}) {
      const ShardPlan plan(n, shards, 100);
      uint32_t covered = 0;
      uint32_t max_size = 0, min_size = ~0u;
      for (uint32_t s = 0; s < shards; ++s) {
        const ShardSlice slice = plan.shard(s);
        EXPECT_EQ(slice.begin, covered) << "n=" << n << " shard " << s;
        covered = slice.end;
        max_size = std::max(max_size, slice.size());
        min_size = std::min(min_size, slice.size());
      }
      EXPECT_EQ(covered, n);
      // Even split: sizes differ by at most one item.
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " S=" << shards;
      ExpectExactTiling(plan);
    }
  }
}

TEST(ShardPlanTest, SingleShardEqualsFlatChunkDecomposition) {
  // The S=1 degeneracy the engine's bit-identity rests on: chunk c must
  // cover exactly [c*chunk_size, min(n, (c+1)*chunk_size)).
  const uint32_t n = 3000, chunk_size = 1024;
  const ShardPlan plan(n, 1, chunk_size);
  ASSERT_EQ(plan.num_chunks(), (n + chunk_size - 1) / chunk_size);
  for (uint32_t c = 0; c < plan.num_chunks(); ++c) {
    const ShardPlan::Chunk chunk = plan.chunk(c);
    EXPECT_EQ(chunk.shard, 0u);
    EXPECT_EQ(chunk.begin, c * chunk_size);
    EXPECT_EQ(chunk.end, std::min(n, (c + 1) * chunk_size));
  }
}

TEST(ShardPlanTest, MoreShardsThanItemsLeavesTrailingShardsEmpty) {
  const ShardPlan plan(5, 8, 64);
  EXPECT_EQ(plan.num_chunks(), 5u);  // five 1-item shards, one chunk each
  for (uint32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(plan.shard(s).size(), 1u);
    EXPECT_EQ(plan.ChunksInShard(s), 1u);
  }
  for (uint32_t s = 5; s < 8; ++s) {
    EXPECT_TRUE(plan.shard(s).empty());
    EXPECT_EQ(plan.ChunksInShard(s), 0u);
  }
  ExpectExactTiling(plan);
}

TEST(ShardPlanTest, EmptyRangeHasNoChunks) {
  const ShardPlan plan(0, 4, 16);
  EXPECT_EQ(plan.num_chunks(), 0u);
  for (uint32_t s = 0; s < 4; ++s) EXPECT_TRUE(plan.shard(s).empty());
}

TEST(ShardPlanTest, ChunkOffsetsAccumulateInShardOrder) {
  const ShardPlan plan(1000, 3, 64);
  uint32_t offset = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(plan.ChunkOffsetOfShard(s), offset);
    const ShardSlice slice = plan.shard(s);
    EXPECT_EQ(plan.ChunksInShard(s), (slice.size() + 63) / 64);
    offset += plan.ChunksInShard(s);
  }
  EXPECT_EQ(offset, plan.num_chunks());
  ExpectExactTiling(plan);
}

TEST(ShardPlanTest, OneItemChunksAreLegal) {
  const ShardPlan plan(17, 4, 1);
  EXPECT_EQ(plan.num_chunks(), 17u);
  ExpectExactTiling(plan);
}

TEST(ShardPlanTest, ClampedCapsShardsAtTheFlatChunkCount) {
  // Clamped() is the entry point for user-supplied shard counts: the
  // shard count never exceeds ceil(n / chunk_size), so absurd requests
  // stay O(work units) instead of allocating per requested shard.
  const ShardPlan absurd = ShardPlan::Clamped(1000, ~0u, 64);
  EXPECT_EQ(absurd.num_shards(), (1000u + 63) / 64);
  ExpectExactTiling(absurd);

  // Requests at or below the cap pass through unchanged.
  EXPECT_EQ(ShardPlan::Clamped(1000, 3, 64).num_shards(), 3u);
  // An empty range still yields a (single-shard) valid plan.
  EXPECT_EQ(ShardPlan::Clamped(0, 8, 64).num_shards(), 1u);
  EXPECT_EQ(ShardPlan::Clamped(0, 8, 64).num_chunks(), 0u);
}

TEST(ShardPlanTest, NearMaxChunkSizeDoesNotOverflow) {
  // Regression: `size + chunk_size - 1` and `begin + chunk_size` wrapped
  // in uint32 for chunk sizes near 2^32, yielding zero chunks — passes
  // would silently process no items.
  const ShardPlan plan(1000, 3, ~0u);
  EXPECT_EQ(plan.num_chunks(), 3u);  // one whole-shard chunk per shard
  for (uint32_t s = 0; s < 3; ++s) EXPECT_EQ(plan.ChunksInShard(s), 1u);
  ExpectExactTiling(plan);
}

struct TestStats {
  uint64_t sum = 0;
  uint32_t chunks = 0;
};

TEST(ShardedAccumulatorTest, MergesInGlobalChunkOrder) {
  const ShardPlan plan(250, 3, 32);
  ShardedAccumulator<TestStats> accumulator(plan);
  ASSERT_EQ(accumulator.num_slots(), plan.num_chunks());
  // Fill each slot with its chunk's item-id sum.
  for (uint32_t index = 0; index < plan.num_chunks(); ++index) {
    const ShardPlan::Chunk chunk = plan.chunk(index);
    TestStats* stats = accumulator.slot(index);
    for (uint32_t item = chunk.begin; item < chunk.end; ++item) {
      stats->sum += item;
    }
    stats->chunks = 1;
  }
  uint64_t total = 0;
  uint32_t chunks = 0;
  accumulator.MergeInOrder([&](const TestStats& stats) {
    total += stats.sum;
    chunks += stats.chunks;
  });
  EXPECT_EQ(total, 250ull * 249ull / 2);
  EXPECT_EQ(chunks, plan.num_chunks());

  // Reset reinitialises every slot for a new (smaller) plan.
  const ShardPlan smaller(10, 2, 4);
  accumulator.Reset(smaller);
  ASSERT_EQ(accumulator.num_slots(), smaller.num_chunks());
  uint64_t after_reset = 0;
  accumulator.MergeInOrder(
      [&](const TestStats& stats) { after_reset += stats.sum; });
  EXPECT_EQ(after_reset, 0u);
}

TEST(ShardExecutorTest, VisitsEveryChunkOnceSequentiallyAndPooled) {
  const ShardPlan plan(1000, 3, 64);
  // Sequential: chunks arrive in global order with worker 0.
  std::vector<uint32_t> visited(plan.num_chunks(), 0);
  uint32_t last_index = 0;
  bool in_order = true;
  ForEachShardChunk(plan, nullptr,
                    [&](const ShardPlan::Chunk&, uint32_t index,
                        uint32_t worker) {
                      EXPECT_EQ(worker, 0u);
                      ++visited[index];
                      if (index < last_index) in_order = false;
                      last_index = index;
                    });
  EXPECT_TRUE(in_order);
  for (const uint32_t count : visited) EXPECT_EQ(count, 1u);

  // Pooled: every chunk exactly once, items covered exactly once.
  ThreadPool pool(4);
  std::vector<uint32_t> item_visits(plan.num_items(), 0);
  std::vector<uint32_t> pooled(plan.num_chunks(), 0);
  ForEachShardChunk(plan, &pool,
                    [&](const ShardPlan::Chunk& chunk, uint32_t index,
                        uint32_t worker) {
                      EXPECT_LT(worker, 4u);
                      ++pooled[index];
                      for (uint32_t item = chunk.begin; item < chunk.end;
                           ++item) {
                        // Each chunk owns disjoint items: no lock needed.
                        ++item_visits[item];
                      }
                    });
  for (const uint32_t count : pooled) EXPECT_EQ(count, 1u);
  for (const uint32_t count : item_visits) EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace lshclust
