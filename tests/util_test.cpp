// Unit tests for src/util: Status/Result, RNG, string helpers, flags,
// stopwatch and logging configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "util/flags.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace lshclust {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  const Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, CopyIsDeep) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::KeyError("missing");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsKeyError());
}

TEST(StatusTest, WithContextPrepends) {
  const Status st = Status::IOError("open failed").WithContext("loading x");
  EXPECT_EQ(st.message(), "loading x: open failed");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::KeyError("a"));
}

TEST(StatusTest, CodeNamesAreHumanReadable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "Not implemented");
}

// ---------------------------------------------------------------- Result --

Result<int> Divide(int a, int b) {
  if (b == 0) return Status::InvalidArgument("division by zero");
  return a / b;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Divide(10, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOrDie(), 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Divide(1, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  EXPECT_EQ(Divide(9, 3).ValueOr(-1), 3);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> UsesAssignOrReturn(int a, int b) {
  LSHC_ASSIGN_OR_RETURN(const int q, Divide(a, b));
  return q + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*UsesAssignOrReturn(4, 2), 3);
  EXPECT_TRUE(UsesAssignOrReturn(4, 0).status().IsInvalidArgument());
}

Status UsesReturnNotOk(bool fail) {
  LSHC_RETURN_NOT_OK(fail ? Status::IOError("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(false).ok());
  EXPECT_TRUE(UsesReturnNotOk(true).IsIOError());
}

// ------------------------------------------------------------------- RNG --

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, UniformCoversClosedRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int kSamples = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const uint32_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Consecutive inputs should differ in many bits (avalanche sanity).
  const uint64_t diff = Mix64(1000) ^ Mix64(1001);
  EXPECT_GT(__builtin_popcountll(diff), 10);
}

TEST(ZipfSamplerTest, RankZeroMostProbable) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(50));
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(50, 1.2);
  double total = 0;
  for (uint32_t r = 0; r < 50; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesFollowRanks) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[9]);
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ZipfSamplerTest, SingletonAlwaysSamplesZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, TrimRemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtilTest, ParseInt64AcceptsFullMatchesOnly) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("42x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringUtilTest, ParseDoubleAcceptsFullMatchesOnly) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

// ----------------------------------------------------------------- flags --

TEST(FlagSetTest, ParsesAllKinds) {
  FlagSet flags("test");
  int64_t count = 5;
  double scale = 1.0;
  bool verbose = false;
  std::string name = "default";
  flags.AddInt64("count", &count, "a count");
  flags.AddDouble("scale", &scale, "a scale");
  flags.AddBool("verbose", &verbose, "verbosity");
  flags.AddString("name", &name, "a name");

  const char* argv[] = {"prog", "--count=7", "--scale", "0.5", "--verbose",
                        "--name=xyz", "positional"};
  ASSERT_TRUE(flags.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_EQ(count, 7);
  EXPECT_DOUBLE_EQ(scale, 0.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "xyz");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagSetTest, NoPrefixNegatesBool) {
  FlagSet flags("test");
  bool feature = true;
  flags.AddBool("feature", &feature, "a feature");
  const char* argv[] = {"prog", "--no-feature"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(feature);
}

TEST(FlagSetTest, RejectsUnknownFlag) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagSetTest, RejectsMalformedValues) {
  FlagSet flags("test");
  int64_t count = 0;
  flags.AddInt64("count", &count, "a count");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagSetTest, MissingValueIsError) {
  FlagSet flags("test");
  int64_t count = 0;
  flags.AddInt64("count", &count, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagSetTest, UsageMentionsFlagsAndDefaults) {
  FlagSet flags("prog");
  double scale = 0.25;
  flags.AddDouble("scale", &scale, "dataset scale");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("dataset scale"), std::string::npos);
  EXPECT_NE(usage.find("0.25"), std::string::npos);
}

// ------------------------------------------------------------- stopwatch --

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  const double t0 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(watch.ElapsedSeconds(), t0);
  EXPECT_GE(watch.ElapsedNanos(), 0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

// --------------------------------------------------------------- logging --

TEST(LoggingTest, ParseLevelNames) {
  EXPECT_EQ(Logger::ParseLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::ParseLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(Logger::ParseLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::ParseLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(Logger::ParseLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(Logger::ParseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logger::ParseLevel("off"), LogLevel::kOff);
  EXPECT_EQ(Logger::ParseLevel("bogus"), LogLevel::kInfo);
}

TEST(LoggingTest, SetLevelRoundTrips) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  Logger::set_level(before);
}

TEST(LoggingTest, ChecksPassOnTrueCondition) {
  LSHC_CHECK(1 + 1 == 2) << "arithmetic broke";
  LSHC_CHECK_EQ(2, 2);
  LSHC_CHECK_NE(1, 2);
  LSHC_CHECK_LT(1, 2);
  LSHC_CHECK_LE(2, 2);
  LSHC_CHECK_GT(3, 2);
  LSHC_CHECK_GE(3, 3);
  LSHC_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ LSHC_CHECK(false) << "expected failure"; },
               "expected failure");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ LSHC_CHECK_OK(Status::IOError("disk on fire")); },
               "disk on fire");
}

}  // namespace
}  // namespace lshclust
