// Unit and property tests for src/hashing: hash families, MinHash
// (Algorithm 1), one-permutation MinHash, SimHash.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "hashing/hash_family.h"
#include "hashing/minhash.h"
#include "hashing/one_permutation_minhash.h"
#include "hashing/simhash.h"
#include "util/rng.h"

namespace lshclust {
namespace {

// --------------------------------------------------------- hash families --

template <typename Family>
void ExpectDeterministicPerSeed() {
  Family a(4, 99), b(4, 99), c(4, 100);
  ASSERT_EQ(a.size(), 4u);
  for (uint32_t f = 0; f < 4; ++f) {
    for (uint64_t key : {0ULL, 1ULL, 42ULL, ~0ULL}) {
      EXPECT_EQ(a.Hash(f, key), b.Hash(f, key));
    }
  }
  bool differs = false;
  for (uint32_t f = 0; f < 4; ++f) {
    if (a.Hash(f, 12345) != c.Hash(f, 12345)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(HashFamilyTest, MultiplyShiftDeterministic) {
  ExpectDeterministicPerSeed<MultiplyShiftFamily>();
}
TEST(HashFamilyTest, UniversalDeterministic) {
  ExpectDeterministicPerSeed<UniversalHashFamily>();
}
TEST(HashFamilyTest, TabulationDeterministic) {
  ExpectDeterministicPerSeed<TabulationHashFamily>();
}

TEST(HashFamilyTest, FunctionsWithinFamilyDiffer) {
  MultiplyShiftFamily family(8, 7);
  std::set<uint64_t> values;
  for (uint32_t f = 0; f < 8; ++f) values.insert(family.Hash(f, 999));
  EXPECT_GT(values.size(), 6u);  // near-certain all distinct
}

TEST(HashFamilyTest, UniversalOutputsBelowPrime) {
  UniversalHashFamily family(16, 3);
  Rng rng(5);
  for (uint32_t f = 0; f < 16; ++f) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(family.Hash(f, rng.Next()), UniversalHashFamily::kPrime);
    }
  }
}

TEST(HashFamilyTest, UniversalModMulAddMatchesNaive) {
  // Small values where (a*x + b) mod p is computable directly.
  EXPECT_EQ(UniversalHashFamily::ModMulAdd(2, 3, 1), 7u);  // 2*3+1 = 7 < p
  EXPECT_EQ(UniversalHashFamily::ModMulAdd(0, 12345, 17), 17u);
  // A case that overflows 64 bits without the 128-bit path.
  const uint64_t p = UniversalHashFamily::kPrime;
  const uint64_t a = p - 1, x = p - 2, b = p - 3;
  const __uint128_t expect = (static_cast<__uint128_t>(a) * x + b) % p;
  EXPECT_EQ(UniversalHashFamily::ModMulAdd(a, x, b),
            static_cast<uint64_t>(expect));
}

TEST(HashFamilyTest, UniversalCollisionRateIsUniversal) {
  // For a 2-universal family, Pr[h(x) = h(y)] <= 1/p is astronomically
  // small; sampled pairs must not collide.
  UniversalHashFamily family(32, 11);
  Rng rng(13);
  for (uint32_t f = 0; f < 32; ++f) {
    const uint64_t x = rng.Next() % UniversalHashFamily::kPrime;
    const uint64_t y = rng.Next() % UniversalHashFamily::kPrime;
    if (x != y) {
      EXPECT_NE(family.Hash(f, x), family.Hash(f, y));
    }
  }
}

TEST(HashFamilyTest, TabulationDistributesBytes) {
  TabulationHashFamily family(1, 17);
  // Changing one input byte must change the hash (XOR of random tables).
  const uint64_t base = family.Hash(0, 0x0123456789ABCDEFULL);
  for (int byte = 0; byte < 8; ++byte) {
    const uint64_t flipped = 0x0123456789ABCDEFULL ^ (0xFFULL << (8 * byte));
    EXPECT_NE(family.Hash(0, flipped), base);
  }
}

TEST(HashFamilyTest, MultiplyShiftHighBitsUniform) {
  // Bucket 10k sequential keys by the top 4 bits; expect rough uniformity
  // (sequential keys are the adversarial case for weak hashes).
  MultiplyShiftFamily family(1, 23);
  std::vector<int> buckets(16, 0);
  for (uint64_t key = 0; key < 10000; ++key) {
    ++buckets[family.Hash(0, key) >> 60];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 300);
    EXPECT_LT(count, 1000);
  }
}

// ---------------------------------------------------------------- minhash --

TEST(MinHashTest, IdenticalSetsProduceIdenticalSignatures) {
  const MinHasher hasher(64, 42);
  const std::vector<uint32_t> tokens{5, 9, 100, 3000};
  EXPECT_EQ(hasher.ComputeSignature(tokens), hasher.ComputeSignature(tokens));
}

TEST(MinHashTest, OrderInvariant) {
  const MinHasher hasher(64, 42);
  const std::vector<uint32_t> a{1, 2, 3, 4, 5};
  const std::vector<uint32_t> b{5, 3, 1, 4, 2};
  EXPECT_EQ(hasher.ComputeSignature(a), hasher.ComputeSignature(b));
}

TEST(MinHashTest, DuplicateTokensDoNotChangeSignature) {
  const MinHasher hasher(32, 7);
  const std::vector<uint32_t> a{1, 2, 3};
  const std::vector<uint32_t> b{1, 1, 2, 2, 3, 3, 3};
  EXPECT_EQ(hasher.ComputeSignature(a), hasher.ComputeSignature(b));
}

TEST(MinHashTest, EmptySetGetsSentinelSignature) {
  const MinHasher hasher(16, 3);
  const auto signature = hasher.ComputeSignature(std::vector<uint32_t>{});
  for (const uint64_t component : signature) {
    EXPECT_EQ(component, kEmptySetSignature);
  }
}

TEST(MinHashTest, SignatureIsMinOverTokenHashes) {
  // Adding a token can only lower (or keep) each component.
  const MinHasher hasher(32, 11);
  std::vector<uint32_t> tokens{10, 20, 30};
  const auto before = hasher.ComputeSignature(tokens);
  tokens.push_back(40);
  const auto after = hasher.ComputeSignature(tokens);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_LE(after[i], before[i]);
  }
}

TEST(MinHashTest, DisjointSetsDisagreeAlmostEverywhere) {
  const MinHasher hasher(128, 5);
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < 50; ++i) a.push_back(i);
  for (uint32_t i = 100; i < 150; ++i) b.push_back(i);
  const double estimate = MinHasher::EstimateJaccard(
      hasher.ComputeSignature(a), hasher.ComputeSignature(b));
  EXPECT_LT(estimate, 0.05);
}

TEST(MinHashTest, EstimateJaccardOfIdenticalSignaturesIsOne) {
  const MinHasher hasher(64, 9);
  const std::vector<uint32_t> tokens{3, 1, 4, 1, 5};
  const auto sig = hasher.ComputeSignature(tokens);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard(sig, sig), 1.0);
}

// Builds two token sets with exact Jaccard similarity `s` given set size z:
// intersection i = 2zs/(1+s).
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> MakePairWithJaccard(
    double s, uint32_t z) {
  const uint32_t i = static_cast<uint32_t>(
      std::round(2.0 * z * s / (1.0 + s)));
  std::vector<uint32_t> a, b;
  uint32_t next = 1;
  for (uint32_t t = 0; t < i; ++t) {
    a.push_back(next);
    b.push_back(next);
    ++next;
  }
  while (a.size() < z) a.push_back(next++);
  while (b.size() < z) b.push_back(next++);
  return {a, b};
}

double TrueJaccard(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b) {
  std::set<uint32_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::vector<uint32_t> inter, uni;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(uni));
  return static_cast<double>(inter.size()) / static_cast<double>(uni.size());
}

/// Property sweep: the MinHash estimate converges to the true Jaccard for
/// both hash-derivation modes, across similarity levels.
class MinHashAccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, MinHashMode>> {};

TEST_P(MinHashAccuracyTest, EstimateWithinTolerance) {
  const auto [target, mode] = GetParam();
  const uint32_t kHashes = 512;
  const uint32_t kSetSize = 200;
  auto [a, b] = MakePairWithJaccard(target, kSetSize);
  const double truth = TrueJaccard(a, b);

  // Average over several independent hash families to tighten variance.
  double total = 0;
  const int kFamilies = 8;
  for (int f = 0; f < kFamilies; ++f) {
    const MinHasher hasher(kHashes, 1000 + f, mode);
    total += MinHasher::EstimateJaccard(hasher.ComputeSignature(a),
                                        hasher.ComputeSignature(b));
  }
  const double estimate = total / kFamilies;
  // sigma = sqrt(s(1-s)/n), n = 512*8; allow 4 sigma + rounding slack.
  const double sigma = std::sqrt(truth * (1 - truth) / (kHashes * kFamilies));
  EXPECT_NEAR(estimate, truth, 4 * sigma + 0.01)
      << "target similarity " << target;
}

INSTANTIATE_TEST_SUITE_P(
    Similarities, MinHashAccuracyTest,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9),
                       ::testing::Values(MinHashMode::kDoubleHashing,
                                         MinHashMode::kIndependent)));

// --------------------------------------------- one-permutation minhash --

TEST(OnePermutationMinHashTest, DeterministicAndOrderInvariant) {
  const OnePermutationMinHasher hasher(64, 21);
  const std::vector<uint32_t> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<uint32_t> b{8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(hasher.ComputeSignature(a), hasher.ComputeSignature(b));
}

TEST(OnePermutationMinHashTest, EmptySetGetsSentinel) {
  const OnePermutationMinHasher hasher(16, 5);
  const auto sig = hasher.ComputeSignature(std::vector<uint32_t>{});
  for (const uint64_t component : sig) {
    EXPECT_EQ(component, kEmptySetSignature);
  }
}

TEST(OnePermutationMinHashTest, DensificationFillsAllBins) {
  // 4 tokens into 64 bins leaves most bins empty; densification must fill
  // every one with a non-sentinel value.
  const OnePermutationMinHasher hasher(64, 33);
  const auto sig = hasher.ComputeSignature(std::vector<uint32_t>{9, 8, 7, 6});
  for (const uint64_t component : sig) {
    EXPECT_NE(component, kEmptySetSignature);
  }
}

TEST(OnePermutationMinHashTest, IdenticalSetsCollideEverywhere) {
  const OnePermutationMinHasher hasher(128, 3);
  const std::vector<uint32_t> tokens{10, 20, 30};
  EXPECT_EQ(hasher.ComputeSignature(tokens), hasher.ComputeSignature(tokens));
}

class OphAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(OphAccuracyTest, CollisionRateTracksJaccard) {
  const double target = GetParam();
  const uint32_t kBins = 256;
  auto [a, b] = MakePairWithJaccard(target, 300);
  const double truth = TrueJaccard(a, b);

  double total = 0;
  const int kFamilies = 10;
  for (int f = 0; f < kFamilies; ++f) {
    const OnePermutationMinHasher hasher(kBins, 2000 + f);
    const auto sa = hasher.ComputeSignature(a);
    const auto sb = hasher.ComputeSignature(b);
    size_t agree = 0;
    for (size_t i = 0; i < sa.size(); ++i) agree += sa[i] == sb[i];
    total += static_cast<double>(agree) / kBins;
  }
  const double estimate = total / kFamilies;
  // Densified OPH is approximately unbiased; allow a looser tolerance.
  EXPECT_NEAR(estimate, truth, 0.05) << "target similarity " << target;
}

INSTANTIATE_TEST_SUITE_P(Similarities, OphAccuracyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ---------------------------------------------------------------- simhash --

TEST(SimHashTest, DeterministicPerSeed) {
  const SimHasher a(32, 8, 5), b(32, 8, 5);
  const std::vector<double> vec{1, -2, 3, -4, 5, -6, 7, -8};
  EXPECT_EQ(a.ComputeSignature(vec), b.ComputeSignature(vec));
}

TEST(SimHashTest, ComponentsAreBits) {
  const SimHasher hasher(64, 4, 9);
  const std::vector<double> vec{0.5, -0.25, 1.5, 2.0};
  for (const uint64_t bit : hasher.ComputeSignature(vec)) {
    EXPECT_TRUE(bit == 0 || bit == 1);
  }
}

TEST(SimHashTest, ScaleInvariant) {
  // sign(w . cv) == sign(w . v) for c > 0.
  const SimHasher hasher(64, 6, 13);
  std::vector<double> v{1, -1, 2, -2, 0.5, 3};
  std::vector<double> scaled(v);
  for (auto& x : scaled) x *= 7.5;
  EXPECT_EQ(hasher.ComputeSignature(v), hasher.ComputeSignature(scaled));
}

TEST(SimHashTest, OppositeVectorsDisagreeEverywhere) {
  const SimHasher hasher(64, 6, 17);
  std::vector<double> v{1, -1, 2, -2, 0.5, 3};
  std::vector<double> negated(v);
  for (auto& x : negated) x = -x;
  const auto sa = hasher.ComputeSignature(v);
  const auto sb = hasher.ComputeSignature(negated);
  // Ignoring exact-zero dot products (measure zero), all bits flip.
  size_t agree = 0;
  for (size_t i = 0; i < sa.size(); ++i) agree += sa[i] == sb[i];
  EXPECT_EQ(agree, 0u);
}

TEST(SimHashTest, CollisionRateMatchesAngle) {
  // Vectors at 60 degrees should agree on ~1 - 60/180 = 2/3 of bits.
  const double theta = 3.14159265358979323846 / 3.0;
  std::vector<double> u{1, 0};
  std::vector<double> v{std::cos(theta), std::sin(theta)};
  double total = 0;
  const int kFamilies = 20;
  const uint32_t kBits = 256;
  for (int f = 0; f < kFamilies; ++f) {
    const SimHasher hasher(kBits, 2, 100 + f);
    const auto su = hasher.ComputeSignature(u);
    const auto sv = hasher.ComputeSignature(v);
    size_t agree = 0;
    for (size_t i = 0; i < su.size(); ++i) agree += su[i] == sv[i];
    total += static_cast<double>(agree) / kBits;
  }
  EXPECT_NEAR(total / kFamilies, SimHasher::BitCollisionProbability(theta),
              0.02);
}

TEST(SimHashTest, BitCollisionProbabilityFormula) {
  EXPECT_DOUBLE_EQ(SimHasher::BitCollisionProbability(0.0), 1.0);
  EXPECT_NEAR(SimHasher::BitCollisionProbability(3.14159265358979), 0.0,
              1e-9);
}

}  // namespace
}  // namespace lshclust
