// Tests for core/streaming.h: bootstrap, online ingestion, incremental
// mode maintenance, fallback behaviour.

#include <gtest/gtest.h>

#include <algorithm>

#include "clustering/dissimilarity.h"
#include "core/streaming.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

CategoricalDataset MakeData(uint32_t n, uint32_t k, uint64_t seed,
                            double min_rule = 0.6, double max_rule = 0.9) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = 20;
  options.num_clusters = k;
  options.domain_size = 2000;
  options.min_rule_fraction = min_rule;
  options.max_rule_fraction = max_rule;
  options.seed = seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

StreamingMHKModesOptions MakeOptions(uint32_t k, uint64_t seed = 5) {
  StreamingMHKModesOptions options;
  options.bootstrap.engine.num_clusters = k;
  options.bootstrap.engine.seed = seed;
  options.bootstrap.index.banding = {12, 3};
  return options;
}

TEST(StreamingTest, BootstrapMatchesBatchClustering) {
  const auto warmup = MakeData(400, 20, 3);
  const auto options = MakeOptions(20);
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  // The streaming bootstrap runs the identical batch algorithm.
  const auto batch = RunMHKModes(warmup, options.bootstrap).ValueOrDie();
  EXPECT_EQ(stream.assignment(), batch.result.assignment);
  EXPECT_EQ(stream.num_clusters(), 20u);
  EXPECT_EQ(stream.num_attributes(), warmup.num_attributes());
  EXPECT_EQ(stream.stats().ingested, 0u);
}

TEST(StreamingTest, IngestAssignsValidClustersAndGrowsAssignment) {
  const auto all = MakeData(600, 20, 7);
  const auto warmup = SliceDataset(all, 0, 400).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(20)).ValueOrDie();

  for (uint32_t item = 400; item < 600; ++item) {
    const auto cluster = stream.Ingest(all.Row(item));
    ASSERT_TRUE(cluster.ok());
    EXPECT_LT(*cluster, 20u);
  }
  EXPECT_EQ(stream.assignment().size(), 600u);
  EXPECT_EQ(stream.stats().ingested, 200u);
  // LSH routing keeps shortlists far below k.
  if (stream.stats().ingested > stream.stats().exhaustive_fallbacks) {
    const double mean_shortlist =
        static_cast<double>(stream.stats().shortlist_total) /
        (stream.stats().ingested - stream.stats().exhaustive_fallbacks);
    EXPECT_LT(mean_shortlist, 20.0);
  }
}

TEST(StreamingTest, StreamedItemsLandWithTheirBatchPeers) {
  // On cleanly separated data, an arriving item must join the cluster its
  // ground-truth peers occupy.
  const auto all = MakeData(300, 6, 11, 1.0, 1.0);  // pure clusters
  const auto warmup = SliceDataset(all, 0, 200).ValueOrDie();

  auto options = MakeOptions(6);
  options.bootstrap.engine.initial_seeds = {0, 1, 2, 3, 4, 5};
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  for (uint32_t item = 200; item < 300; ++item) {
    const uint32_t cluster = stream.Ingest(all.Row(item)).ValueOrDie();
    // Find a warm-up item with the same label; it must share the cluster.
    for (uint32_t peer = 0; peer < 200; ++peer) {
      if (all.labels()[peer] == all.labels()[item]) {
        EXPECT_EQ(cluster, stream.assignment()[peer])
            << "item " << item << " split from its peers";
        break;
      }
    }
  }
}

TEST(StreamingTest, IncrementalModesMatchFullRecompute) {
  // After ingesting a batch, the incrementally-maintained modes must equal
  // a full recompute over (warmup + ingested) with the same assignment.
  const auto all = MakeData(500, 10, 13);
  const auto warmup = SliceDataset(all, 0, 300).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(10)).ValueOrDie();
  for (uint32_t item = 300; item < 500; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }

  ModeTable reference(10, all.num_attributes());
  Rng rng(1);
  reference.RecomputeFromAssignment(all, stream.assignment(),
                                    EmptyClusterPolicy::kKeepPreviousMode,
                                    rng);
  // Compare component-wise where the majority is unique; on ties the
  // incremental tracker keeps the first-reaching code while the batch
  // recompute takes the smallest, so compare supports instead of codes:
  // both codes must have the same frequency within the cluster.
  for (uint32_t cluster = 0; cluster < 10; ++cluster) {
    for (uint32_t attribute = 0; attribute < all.num_attributes();
         ++attribute) {
      const uint32_t incremental = stream.ModeOf(cluster)[attribute];
      const uint32_t recomputed = reference.Mode(cluster)[attribute];
      if (incremental == recomputed) continue;
      uint32_t incremental_count = 0, recomputed_count = 0;
      for (uint32_t item = 0; item < all.num_items(); ++item) {
        if (stream.assignment()[item] != cluster) continue;
        const uint32_t code = all.Row(item)[attribute];
        incremental_count += code == incremental ? 1 : 0;
        recomputed_count += code == recomputed ? 1 : 0;
      }
      EXPECT_EQ(incremental_count, recomputed_count)
          << "cluster " << cluster << " attribute " << attribute
          << ": incremental mode is not a majority";
    }
  }
}

TEST(StreamingTest, FrozenModesWhenUpdateDisabled) {
  const auto all = MakeData(400, 8, 17);
  const auto warmup = SliceDataset(all, 0, 300).ValueOrDie();
  auto options = MakeOptions(8);
  options.update_modes = false;
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  std::vector<std::vector<uint32_t>> before;
  for (uint32_t cluster = 0; cluster < 8; ++cluster) {
    before.emplace_back(stream.ModeOf(cluster).begin(),
                        stream.ModeOf(cluster).end());
  }
  for (uint32_t item = 300; item < 400; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  for (uint32_t cluster = 0; cluster < 8; ++cluster) {
    EXPECT_EQ(std::vector<uint32_t>(stream.ModeOf(cluster).begin(),
                                    stream.ModeOf(cluster).end()),
              before[cluster]);
  }
}

TEST(StreamingTest, RejectsWrongArityRows) {
  const auto warmup = MakeData(200, 5, 19);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  const std::vector<uint32_t> short_row(warmup.num_attributes() - 1, 0);
  EXPECT_TRUE(stream.Ingest(short_row).status().IsInvalidArgument());
}

TEST(StreamingTest, UnknownCodesFallBackGracefully) {
  // An item of entirely novel codes has no similar predecessor: it must
  // still get assigned (exhaustive fallback) and be counted as such.
  const auto warmup = MakeData(200, 5, 23);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  std::vector<uint32_t> alien(warmup.num_attributes());
  for (uint32_t a = 0; a < alien.size(); ++a) {
    alien[a] = 4000000000u + a;  // far outside the warm-up code space
  }
  const auto cluster = stream.Ingest(alien);
  ASSERT_TRUE(cluster.ok());
  EXPECT_LT(*cluster, 5u);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);

  // A second identical alien now HAS a similar predecessor (the first):
  // it must shortlist instead of falling back, and join the same cluster.
  const auto second = stream.Ingest(alien);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *cluster);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);
}

TEST(StreamingTest, StreamingPurityTracksBatchPurity) {
  const auto all = MakeData(800, 40, 29);
  const auto warmup = SliceDataset(all, 0, 500).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(40)).ValueOrDie();
  for (uint32_t item = 500; item < 800; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  const double streaming_purity =
      ComputePurity(stream.assignment(), all.labels()).ValueOrDie();

  auto batch_options = MakeOptions(40).bootstrap;
  const auto batch = RunMHKModes(all, batch_options).ValueOrDie();
  const double batch_purity =
      ComputePurity(batch.result.assignment, all.labels()).ValueOrDie();

  EXPECT_GE(streaming_purity, batch_purity - 0.15)
      << "streaming lost too much quality vs batch re-clustering";
}

}  // namespace
}  // namespace lshclust
