// Tests for core/streaming.h: bootstrap, online ingestion, incremental
// mode maintenance, fallback behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "clustering/dissimilarity.h"
#include "core/streaming.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

CategoricalDataset MakeData(uint32_t n, uint32_t k, uint64_t seed,
                            double min_rule = 0.6, double max_rule = 0.9) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = 20;
  options.num_clusters = k;
  options.domain_size = 2000;
  options.min_rule_fraction = min_rule;
  options.max_rule_fraction = max_rule;
  options.seed = seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

StreamingMHKModesOptions MakeOptions(uint32_t k, uint64_t seed = 5) {
  StreamingMHKModesOptions options;
  options.bootstrap.engine.num_clusters = k;
  options.bootstrap.engine.seed = seed;
  options.bootstrap.index.banding = {12, 3};
  return options;
}

TEST(StreamingTest, BootstrapMatchesBatchClustering) {
  const auto warmup = MakeData(400, 20, 3);
  const auto options = MakeOptions(20);
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  // The streaming bootstrap runs the identical batch algorithm.
  const auto batch = RunMHKModes(warmup, options.bootstrap).ValueOrDie();
  EXPECT_EQ(stream.assignment(), batch.result.assignment);
  EXPECT_EQ(stream.num_clusters(), 20u);
  EXPECT_EQ(stream.num_attributes(), warmup.num_attributes());
  EXPECT_EQ(stream.stats().ingested, 0u);
}

TEST(StreamingTest, IngestAssignsValidClustersAndGrowsAssignment) {
  const auto all = MakeData(600, 20, 7);
  const auto warmup = SliceDataset(all, 0, 400).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(20)).ValueOrDie();

  for (uint32_t item = 400; item < 600; ++item) {
    const auto cluster = stream.Ingest(all.Row(item));
    ASSERT_TRUE(cluster.ok());
    EXPECT_LT(*cluster, 20u);
  }
  EXPECT_EQ(stream.assignment().size(), 600u);
  EXPECT_EQ(stream.stats().ingested, 200u);
  // LSH routing keeps shortlists far below k.
  if (stream.stats().ingested > stream.stats().exhaustive_fallbacks) {
    const double mean_shortlist =
        static_cast<double>(stream.stats().shortlist_total) /
        (stream.stats().ingested - stream.stats().exhaustive_fallbacks);
    EXPECT_LT(mean_shortlist, 20.0);
  }
}

TEST(StreamingTest, StreamedItemsLandWithTheirBatchPeers) {
  // On cleanly separated data, an arriving item must join the cluster its
  // ground-truth peers occupy.
  const auto all = MakeData(300, 6, 11, 1.0, 1.0);  // pure clusters
  const auto warmup = SliceDataset(all, 0, 200).ValueOrDie();

  auto options = MakeOptions(6);
  options.bootstrap.engine.initial_seeds = {0, 1, 2, 3, 4, 5};
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  for (uint32_t item = 200; item < 300; ++item) {
    const uint32_t cluster = stream.Ingest(all.Row(item)).ValueOrDie();
    // Find a warm-up item with the same label; it must share the cluster.
    for (uint32_t peer = 0; peer < 200; ++peer) {
      if (all.labels()[peer] == all.labels()[item]) {
        EXPECT_EQ(cluster, stream.assignment()[peer])
            << "item " << item << " split from its peers";
        break;
      }
    }
  }
}

TEST(StreamingTest, IncrementalModesMatchFullRecompute) {
  // After ingesting a batch, the incrementally-maintained modes must equal
  // a full recompute over (warmup + ingested) with the same assignment.
  const auto all = MakeData(500, 10, 13);
  const auto warmup = SliceDataset(all, 0, 300).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(10)).ValueOrDie();
  for (uint32_t item = 300; item < 500; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }

  ModeTable reference(10, all.num_attributes());
  Rng rng(1);
  reference.RecomputeFromAssignment(all, stream.assignment(),
                                    EmptyClusterPolicy::kKeepPreviousMode,
                                    rng);
  // Compare component-wise where the majority is unique; on ties the
  // incremental tracker keeps the first-reaching code while the batch
  // recompute takes the smallest, so compare supports instead of codes:
  // both codes must have the same frequency within the cluster.
  for (uint32_t cluster = 0; cluster < 10; ++cluster) {
    for (uint32_t attribute = 0; attribute < all.num_attributes();
         ++attribute) {
      const uint32_t incremental = stream.ModeOf(cluster)[attribute];
      const uint32_t recomputed = reference.Mode(cluster)[attribute];
      if (incremental == recomputed) continue;
      uint32_t incremental_count = 0, recomputed_count = 0;
      for (uint32_t item = 0; item < all.num_items(); ++item) {
        if (stream.assignment()[item] != cluster) continue;
        const uint32_t code = all.Row(item)[attribute];
        incremental_count += code == incremental ? 1 : 0;
        recomputed_count += code == recomputed ? 1 : 0;
      }
      EXPECT_EQ(incremental_count, recomputed_count)
          << "cluster " << cluster << " attribute " << attribute
          << ": incremental mode is not a majority";
    }
  }
}

TEST(StreamingTest, FrozenModesWhenUpdateDisabled) {
  const auto all = MakeData(400, 8, 17);
  const auto warmup = SliceDataset(all, 0, 300).ValueOrDie();
  auto options = MakeOptions(8);
  options.update_modes = false;
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

  std::vector<std::vector<uint32_t>> before;
  for (uint32_t cluster = 0; cluster < 8; ++cluster) {
    before.emplace_back(stream.ModeOf(cluster).begin(),
                        stream.ModeOf(cluster).end());
  }
  for (uint32_t item = 300; item < 400; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  for (uint32_t cluster = 0; cluster < 8; ++cluster) {
    EXPECT_EQ(std::vector<uint32_t>(stream.ModeOf(cluster).begin(),
                                    stream.ModeOf(cluster).end()),
              before[cluster]);
  }
}

TEST(StreamingTest, RejectsWrongArityRows) {
  const auto warmup = MakeData(200, 5, 19);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  const std::vector<uint32_t> short_row(warmup.num_attributes() - 1, 0);
  EXPECT_TRUE(stream.Ingest(short_row).status().IsInvalidArgument());
}

TEST(StreamingTest, UnknownCodesFallBackGracefully) {
  // An item of entirely novel codes has no similar predecessor: it must
  // still get assigned (exhaustive fallback) and be counted as such.
  const auto warmup = MakeData(200, 5, 23);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  std::vector<uint32_t> alien(warmup.num_attributes());
  for (uint32_t a = 0; a < alien.size(); ++a) {
    alien[a] = 4000000000u + a;  // far outside the warm-up code space
  }
  const auto cluster = stream.Ingest(alien);
  ASSERT_TRUE(cluster.ok());
  EXPECT_LT(*cluster, 5u);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);

  // A second identical alien now HAS a similar predecessor (the first):
  // it must shortlist instead of falling back, and join the same cluster.
  const auto second = stream.Ingest(alien);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *cluster);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);
}

// Ingests all.Row(warmup_n..n) one at a time and returns the final state.
StreamingMHKModes IngestSequentially(const CategoricalDataset& all,
                                     uint32_t warmup_n,
                                     StreamingMHKModesOptions options) {
  const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
  for (uint32_t item = warmup_n; item < all.num_items(); ++item) {
    EXPECT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  return stream;
}

void ExpectSameState(const StreamingMHKModes& expected,
                     const StreamingMHKModes& actual,
                     const std::string& label) {
  EXPECT_EQ(expected.assignment(), actual.assignment()) << label;
  for (uint32_t cluster = 0; cluster < expected.num_clusters(); ++cluster) {
    EXPECT_TRUE(std::equal(expected.ModeOf(cluster).begin(),
                           expected.ModeOf(cluster).end(),
                           actual.ModeOf(cluster).begin()))
        << label << ": mode of cluster " << cluster;
  }
  EXPECT_EQ(expected.stats().ingested, actual.stats().ingested) << label;
  EXPECT_EQ(expected.stats().exhaustive_fallbacks,
            actual.stats().exhaustive_fallbacks)
      << label;
  EXPECT_EQ(expected.stats().shortlist_total, actual.stats().shortlist_total)
      << label;
}

TEST(StreamingTest, IngestBatchBitIdenticalToSequentialAtEveryThreadCount) {
  // The tentpole contract: IngestBatch must equal a sequential Ingest
  // loop over the same arrival order — assignments, modes and stats —
  // for every worker count. Dense clusters make in-batch bucket
  // collisions (the revalidation path) common.
  const auto all = MakeData(900, 12, 31);
  const uint32_t warmup_n = 500;
  const auto sequential =
      IngestSequentially(all, warmup_n, MakeOptions(12));

  uint64_t revalidated = ~0ull;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto options = MakeOptions(12);
    options.ingest_threads = threads;
    const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
    auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
    // Mixed micro-batch sizes, including a 1-item batch and a big tail.
    uint32_t item = warmup_n;
    for (const uint32_t batch : {64u, 1u, 147u, 400u, 1000u}) {
      const uint32_t take =
          std::min(batch, all.num_items() - item);
      const auto rows = std::span<const uint32_t>(
          all.codes().data() +
              static_cast<size_t>(item) * all.num_attributes(),
          static_cast<size_t>(take) * all.num_attributes());
      const auto assigned = stream.IngestBatch(rows);
      ASSERT_TRUE(assigned.ok());
      EXPECT_EQ(assigned->size(), take);
      item += take;
      if (item == all.num_items()) break;
    }
    ASSERT_EQ(item, all.num_items());
    ExpectSameState(sequential, stream,
                    "ingest_threads=" + std::to_string(threads));
    // The accept/revalidate split is data-dependent, never
    // thread-count-dependent.
    if (revalidated == ~0ull) {
      revalidated = stream.stats().revalidated;
    } else {
      EXPECT_EQ(stream.stats().revalidated, revalidated)
          << "ingest_threads=" << threads;
    }
  }
}

TEST(StreamingTest, IngestBatchShardSweepBitIdenticalToSequential) {
  // The shard layer's streaming contract: partitioning micro-batches
  // across ingest shards must be invisible — every
  // (ingest_shards x ingest_threads) combination reproduces the
  // sequential Ingest loop bit-for-bit, assignments, modes and stats.
  const auto all = MakeData(700, 10, 53);
  const uint32_t warmup_n = 400;
  const auto sequential = IngestSequentially(all, warmup_n, MakeOptions(10));

  uint64_t revalidated = ~0ull;
  for (const uint32_t shards : {1u, 2u, 3u, 8u}) {
    for (const uint32_t threads : {1u, 2u, 4u}) {
      auto options = MakeOptions(10);
      options.ingest_shards = shards;
      options.ingest_threads = threads;
      options.ingest_chunk_size = 32;
      const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
      auto stream =
          StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
      uint32_t item = warmup_n;
      for (const uint32_t batch : {150u, 1u, 149u}) {
        const uint32_t take = std::min(batch, all.num_items() - item);
        const auto rows = std::span<const uint32_t>(
            all.codes().data() +
                static_cast<size_t>(item) * all.num_attributes(),
            static_cast<size_t>(take) * all.num_attributes());
        ASSERT_TRUE(stream.IngestBatch(rows).ok());
        item += take;
      }
      ASSERT_EQ(item, all.num_items());
      ExpectSameState(sequential, stream,
                      "ingest_shards=" + std::to_string(shards) +
                          " ingest_threads=" + std::to_string(threads));
      // The accept/revalidate split is data-dependent, never
      // shard- or thread-count-dependent.
      if (revalidated == ~0ull) {
        revalidated = stream.stats().revalidated;
      } else {
        EXPECT_EQ(stream.stats().revalidated, revalidated)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(StreamingTest, IngestBatchMoreShardsThanBatchItems) {
  // A 3-item batch under an absurd shard count: the count is clamped to
  // the batch size (regression: 2^32-1 shards once overflowed the plan),
  // and results must match the sequential loop.
  const auto all = MakeData(303, 6, 59);
  const uint32_t warmup_n = 300;
  const auto sequential = IngestSequentially(all, warmup_n, MakeOptions(6));

  auto options = MakeOptions(6);
  options.ingest_shards = ~0u;  // clamped to the batch's flat chunk count
  options.ingest_threads = 4;
  const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
  const auto rows = std::span<const uint32_t>(
      all.codes().data() +
          static_cast<size_t>(warmup_n) * all.num_attributes(),
      static_cast<size_t>(3) * all.num_attributes());
  const auto assigned = stream.IngestBatch(rows);
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned->size(), 3u);
  ExpectSameState(sequential, stream, "2^32-1 shards over a 3-item batch");
}

TEST(StreamingTest, IngestChunkSizeIsInvisible) {
  // The runtime ingest_chunk_size knob must never change results.
  const auto all = MakeData(600, 8, 61);
  const uint32_t warmup_n = 400;
  const auto sequential = IngestSequentially(all, warmup_n, MakeOptions(8));

  // ~0u is the overflow regression: a near-2^32 ingest chunk size once
  // wrapped the chunk count to zero, inserting zero-filled signatures
  // for the whole batch.
  for (const uint32_t chunk_size : {1u, 5u, 64u, 1000u, ~0u}) {
    auto options = MakeOptions(8);
    options.ingest_chunk_size = chunk_size;
    options.ingest_shards = 2;
    options.ingest_threads = 2;
    const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
    auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
    const auto rows = std::span<const uint32_t>(
        all.codes().data() +
            static_cast<size_t>(warmup_n) * all.num_attributes(),
        static_cast<size_t>(all.num_items() - warmup_n) *
            all.num_attributes());
    ASSERT_TRUE(stream.IngestBatch(rows).ok());
    ExpectSameState(sequential, stream,
                    "ingest_chunk_size=" + std::to_string(chunk_size));
  }
}

TEST(StreamingTest, SingleClusterStreamingDegenerates) {
  // k=1 with shards: every arrival lands in cluster 0 through the same
  // sharded pipeline.
  const auto all = MakeData(250, 1, 67);
  const uint32_t warmup_n = 200;
  const auto sequential = IngestSequentially(all, warmup_n, MakeOptions(1));

  auto options = MakeOptions(1);
  options.ingest_shards = 3;
  options.ingest_threads = 2;
  const auto warmup = SliceDataset(all, 0, warmup_n).ValueOrDie();
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
  const auto rows = std::span<const uint32_t>(
      all.codes().data() +
          static_cast<size_t>(warmup_n) * all.num_attributes(),
      static_cast<size_t>(all.num_items() - warmup_n) *
          all.num_attributes());
  const auto assigned = stream.IngestBatch(rows);
  ASSERT_TRUE(assigned.ok());
  for (const uint32_t cluster : *assigned) EXPECT_EQ(cluster, 0u);
  ExpectSameState(sequential, stream, "k=1 sharded ingest");
}

TEST(StreamingTest, BootstrapRejectsZeroShardOptions) {
  const auto warmup = MakeData(100, 5, 71);
  auto options = MakeOptions(5);
  options.ingest_shards = 0;
  EXPECT_TRUE(StreamingMHKModes::Bootstrap(warmup, options)
                  .status()
                  .IsInvalidArgument());
  options.ingest_shards = 1;
  options.ingest_chunk_size = 0;
  EXPECT_TRUE(StreamingMHKModes::Bootstrap(warmup, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(StreamingTest, IngestBatchRevalidatesInBatchDuplicates) {
  // Two identical never-seen-before items in ONE batch: the first must
  // fall back exhaustively, and the second must find the first through
  // the index (sequential semantics) instead of also falling back —
  // exactly what the frozen-index provisional pass alone would get wrong.
  const auto warmup = MakeData(200, 5, 37);
  for (const uint32_t threads : {1u, 4u}) {
    auto options = MakeOptions(5);
    options.ingest_threads = threads;
    auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
    std::vector<uint32_t> batch;
    for (uint32_t copy = 0; copy < 2; ++copy) {
      for (uint32_t a = 0; a < warmup.num_attributes(); ++a) {
        batch.push_back(4000000000u + a);
      }
    }
    const auto assigned = stream.IngestBatch(batch);
    ASSERT_TRUE(assigned.ok());
    ASSERT_EQ(assigned->size(), 2u);
    EXPECT_EQ((*assigned)[0], (*assigned)[1]);
    EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);
    EXPECT_GE(stream.stats().revalidated, 1u);
    // The second item shortlisted (it saw the first), so exactly one
    // ingest contributed to shortlist_total.
    EXPECT_GE(stream.stats().shortlist_total, 1u);
  }
}

TEST(StreamingTest, IngestBatchRejectsRaggedRows) {
  const auto warmup = MakeData(200, 5, 41);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  const std::vector<uint32_t> ragged(warmup.num_attributes() * 2 - 1, 0);
  EXPECT_TRUE(stream.IngestBatch(ragged).status().IsInvalidArgument());
  const auto empty = stream.IngestBatch(std::span<const uint32_t>());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(StreamingTest, StatsExcludeFallbackScansFromShortlistMean) {
  // Exhaustive fallbacks scan all k clusters but contribute nothing to
  // shortlist_total; the documented mean divides by the ingests that
  // actually shortlisted.
  const auto all = MakeData(500, 10, 43);
  const auto warmup = SliceDataset(all, 0, 400).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(10)).ValueOrDie();
  for (uint32_t item = 400; item < 500; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  const uint64_t shortlist_before = stream.stats().shortlist_total;
  const uint64_t fallbacks_before = stream.stats().exhaustive_fallbacks;

  // An alien row takes the fallback: total unchanged, fallback counted.
  std::vector<uint32_t> alien(warmup.num_attributes());
  for (uint32_t a = 0; a < alien.size(); ++a) alien[a] = 4000000000u + a;
  ASSERT_TRUE(stream.Ingest(alien).ok());
  EXPECT_EQ(stream.stats().shortlist_total, shortlist_before);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, fallbacks_before + 1);

  const auto& stats = stream.stats();
  ASSERT_GT(stats.ingested, stats.exhaustive_fallbacks);
  EXPECT_DOUBLE_EQ(stats.mean_shortlist(),
                   static_cast<double>(stats.shortlist_total) /
                       static_cast<double>(stats.ingested -
                                           stats.exhaustive_fallbacks));
  EXPECT_GT(stats.mean_shortlist(), 0.0);
}

TEST(StreamingTest, DedupEpochWrapDoesNotDropClusters) {
  // Force the dedup epoch to wrap mid-stream: stale stamps must not make
  // shortlists silently lose clusters. The observable guarantee: a
  // previously-seen item keeps resolving to the same cluster through the
  // wrap, without spurious exhaustive fallbacks.
  const auto warmup = MakeData(200, 5, 47);
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(5)).ValueOrDie();
  std::vector<uint32_t> alien(warmup.num_attributes());
  for (uint32_t a = 0; a < alien.size(); ++a) alien[a] = 4000000000u + a;
  const uint32_t home = stream.Ingest(alien).ValueOrDie();
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);

  stream.set_dedup_epoch_for_testing(~0u - 2);
  for (uint32_t repeat = 0; repeat < 8; ++repeat) {  // crosses the wrap
    EXPECT_EQ(stream.Ingest(alien).ValueOrDie(), home) << repeat;
  }
  // Every post-wrap ingest shortlisted its identical predecessors.
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);

  // Same guarantee through IngestBatch's worker-scratch path: one batch
  // to materialise the worker scratches, then wrap their epochs too.
  std::vector<uint32_t> batch;
  for (uint32_t copy = 0; copy < 4; ++copy) {
    batch.insert(batch.end(), alien.begin(), alien.end());
  }
  ASSERT_TRUE(stream.IngestBatch(batch).ok());
  stream.set_dedup_epoch_for_testing(~0u - 1);
  const auto assigned = stream.IngestBatch(batch);
  ASSERT_TRUE(assigned.ok());
  for (const uint32_t cluster : *assigned) EXPECT_EQ(cluster, home);
  EXPECT_EQ(stream.stats().exhaustive_fallbacks, 1u);
}

TEST(StreamingTest, StreamingPurityTracksBatchPurity) {
  const auto all = MakeData(800, 40, 29);
  const auto warmup = SliceDataset(all, 0, 500).ValueOrDie();
  auto stream =
      StreamingMHKModes::Bootstrap(warmup, MakeOptions(40)).ValueOrDie();
  for (uint32_t item = 500; item < 800; ++item) {
    ASSERT_TRUE(stream.Ingest(all.Row(item)).ok());
  }
  const double streaming_purity =
      ComputePurity(stream.assignment(), all.labels()).ValueOrDie();

  auto batch_options = MakeOptions(40).bootstrap;
  const auto batch = RunMHKModes(all, batch_options).ValueOrDie();
  const double batch_purity =
      ComputePurity(batch.result.assignment, all.labels()).ValueOrDie();

  EXPECT_GE(streaming_purity, batch_purity - 0.15)
      << "streaming lost too much quality vs batch re-clustering";
}

}  // namespace
}  // namespace lshclust
