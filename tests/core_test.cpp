// Tests for src/core: the cluster shortlist provider, MH-K-Modes, the
// error-bound machinery (Tables I/II + Monte Carlo), LSH-K-Means, the
// experiment harness and the reporters.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/cluster_shortlist_index.h"
#include "core/error_bound.h"
#include "core/experiment.h"
#include "core/lsh_kmeans.h"
#include "core/mh_kmodes.h"
#include "core/reporters.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

CategoricalDataset MakeData(uint32_t n, uint32_t m, uint32_t k,
                            uint32_t domain, uint64_t seed,
                            double min_rule = 0.4, double max_rule = 0.8) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = m;
  options.num_clusters = k;
  options.domain_size = domain;
  options.min_rule_fraction = min_rule;
  options.max_rule_fraction = max_rule;
  options.seed = seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

// -------------------------------------------- ClusterShortlistProvider --

TEST(ShortlistProviderTest, ShortlistAlwaysContainsCurrentCluster) {
  const auto dataset = MakeData(300, 16, 20, 500, 3);
  ShortlistIndexOptions options;
  options.banding = {8, 4};
  ClusterShortlistProvider provider(options, 20);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment(dataset.num_items());
  Rng rng(5);
  for (auto& cluster : assignment) {
    cluster = static_cast<uint32_t>(rng.Below(20));
  }
  std::vector<uint32_t> shortlist;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    provider.GetCandidates(item, assignment, &shortlist);
    ASSERT_FALSE(shortlist.empty());
    EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), assignment[item]),
              shortlist.end())
        << "item " << item;
  }
}

TEST(ShortlistProviderTest, DedupEpochWrapClearsStaleStamps) {
  // A fresh scratch has all stamps at 0. If the epoch counter is about to
  // wrap, the unguarded ++epoch lands on 0 and every cluster reads as
  // "already seen", silently dropping all peers from the shortlist.
  ClusterDedupScratch scratch = MakeClusterDedupScratch(4);
  scratch.epoch = ~0u;  // next bump wraps

  const std::vector<uint32_t> assignment = {0, 1, 2, 3};
  std::vector<uint32_t> shortlist;
  const auto visit_all = [&](auto&& sink) {
    for (uint32_t peer = 0; peer < 4; ++peer) sink(peer);
  };
  CollectCandidateClusters(0, assignment, scratch, &shortlist, visit_all);
  EXPECT_EQ(shortlist, (std::vector<uint32_t>{0, 1, 2, 3}))
      << "wrapping epoch dropped clusters";
  EXPECT_EQ(scratch.epoch, 1u) << "epoch must restart past the reserved 0";

  // Dedup still works in the epoch right after the wrap.
  CollectCandidateClusters(1, assignment, scratch, &shortlist, visit_all);
  EXPECT_EQ(shortlist, (std::vector<uint32_t>{1, 0, 2, 3}));
}

TEST(ShortlistProviderTest, ExternalQueryReusesProviderBuffers) {
  // GetCandidatesForQuery promises no per-query allocation; at minimum,
  // back-to-back external queries must keep working off the provider's
  // own signature buffer and dedup scratch (including across an epoch
  // wrap) and return deduplicated, in-range clusters.
  const auto dataset = MakeData(300, 16, 20, 500, 7);
  ShortlistIndexOptions options;
  options.banding = {8, 4};
  ClusterShortlistProvider provider(options, 20);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment(dataset.num_items());
  Rng rng(5);
  for (auto& cluster : assignment) {
    cluster = static_cast<uint32_t>(rng.Below(20));
  }
  std::vector<uint32_t> tokens, first, again;
  dataset.PresentTokens(7, &tokens);
  provider.GetCandidatesForTokens(tokens, assignment, &first);
  ASSERT_FALSE(first.empty());  // item 7 collides with itself
  for (uint32_t repeat = 0; repeat < 3; ++repeat) {
    provider.GetCandidatesForTokens(tokens, assignment, &again);
    EXPECT_EQ(again, first) << "repeat " << repeat;
  }
  std::set<uint32_t> unique(first.begin(), first.end());
  EXPECT_EQ(unique.size(), first.size()) << "shortlist not deduplicated";
  for (const uint32_t cluster : first) EXPECT_LT(cluster, 20u);
}

TEST(ShortlistProviderTest, ShortlistIsDeduplicatedAndInRange) {
  const auto dataset = MakeData(200, 12, 10, 50, 7);
  ShortlistIndexOptions options;
  options.banding = {10, 1};  // aggressive: big shortlists
  ClusterShortlistProvider provider(options, 10);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment(dataset.num_items());
  for (uint32_t i = 0; i < dataset.num_items(); ++i) assignment[i] = i % 10;
  std::vector<uint32_t> shortlist;
  for (uint32_t item = 0; item < dataset.num_items(); item += 7) {
    provider.GetCandidates(item, assignment, &shortlist);
    std::set<uint32_t> unique(shortlist.begin(), shortlist.end());
    EXPECT_EQ(unique.size(), shortlist.size()) << "duplicates in shortlist";
    for (const uint32_t cluster : shortlist) EXPECT_LT(cluster, 10u);
  }
}

TEST(ShortlistProviderTest, ShortlistContainsClustersOfIdenticalItems) {
  // Construct a dataset with two identical items assigned to different
  // clusters: each must see the other's cluster in its shortlist.
  auto dataset = CategoricalDataset::FromCodes(
                     4, 3, 30,
                     {1, 2, 3,    // item 0
                      1, 2, 3,    // item 1 (identical to 0)
                      10, 11, 12, // item 2
                      20, 21, 22})// item 3
                     .ValueOrDie();
  ShortlistIndexOptions options;
  options.banding = {4, 4};
  ClusterShortlistProvider provider(options, 4);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  const std::vector<uint32_t> assignment{0, 1, 2, 3};
  std::vector<uint32_t> shortlist;
  provider.GetCandidates(0, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 1u),
            shortlist.end())
      << "identical item's cluster missing from shortlist";
}

TEST(ShortlistProviderTest, ReflectsLiveAssignmentUpdates) {
  // Moving an item's neighbours must change what the shortlist
  // dereferences — the "update the cluster reference" step of Alg. 2.
  auto dataset = CategoricalDataset::FromCodes(
                     2, 2, 20, {1, 2, 1, 2})  // two identical items
                     .ValueOrDie();
  ShortlistIndexOptions options;
  options.banding = {2, 2};
  ClusterShortlistProvider provider(options, 5);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment{0, 3};
  std::vector<uint32_t> shortlist;
  provider.GetCandidates(0, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 3u),
            shortlist.end());
  assignment[1] = 4;  // the move: just a reference update
  provider.GetCandidates(0, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 4u),
            shortlist.end());
  EXPECT_EQ(std::find(shortlist.begin(), shortlist.end(), 3u),
            shortlist.end());
}

TEST(ShortlistProviderTest, ExternalTokenQueryFindsSimilarItems) {
  const auto dataset = MakeData(100, 10, 5, 40, 11);
  ShortlistIndexOptions options;
  options.banding = {6, 2};
  ClusterShortlistProvider provider(options, 5);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment(dataset.num_items());
  for (uint32_t i = 0; i < dataset.num_items(); ++i) assignment[i] = i % 5;

  // Query with item 0's own tokens: its cluster must appear.
  std::vector<uint32_t> tokens;
  dataset.PresentTokens(0, &tokens);
  std::vector<uint32_t> shortlist;
  provider.GetCandidatesForTokens(tokens, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), assignment[0]),
            shortlist.end());
}

TEST(ShortlistProviderTest, OnePermutationBackendWorks) {
  const auto dataset = MakeData(200, 12, 8, 100, 13);
  ShortlistIndexOptions options;
  options.banding = {8, 2};
  options.algorithm = SignatureAlgorithm::kOnePermutation;
  ClusterShortlistProvider provider(options, 8);
  ASSERT_TRUE(provider.Prepare(dataset).ok());
  std::vector<uint32_t> assignment(dataset.num_items());
  for (uint32_t i = 0; i < dataset.num_items(); ++i) assignment[i] = i % 8;
  std::vector<uint32_t> shortlist;
  provider.GetCandidates(0, assignment, &shortlist);
  EXPECT_FALSE(shortlist.empty());
  EXPECT_GT(provider.IndexStats().total_buckets, 0u);
}

TEST(ShortlistProviderTest, TimersAndMemoryArePopulated) {
  const auto dataset = MakeData(150, 10, 6, 80, 17);
  ShortlistIndexOptions options;
  options.banding = {4, 3};
  ClusterShortlistProvider provider(options, 6);
  ASSERT_TRUE(provider.Prepare(dataset).ok());
  EXPECT_GE(provider.signature_seconds(), 0.0);
  EXPECT_GE(provider.index_seconds(), 0.0);
  EXPECT_GT(provider.MemoryUsageBytes(), 0u);
  ASSERT_NE(provider.index(), nullptr);
  EXPECT_EQ(provider.index()->num_items(), dataset.num_items());
}

// --------------------------------------------------------- MH-K-Modes --

TEST(MHKModesTest, ProducesValidClusteringWithSmallShortlists) {
  const auto dataset = MakeData(600, 20, 60, 2000, 19);
  MHKModesOptions options;
  options.engine.num_clusters = 60;
  options.engine.seed = 21;
  options.index.banding = {20, 5};
  const auto run = RunMHKModes(dataset, options).ValueOrDie();

  EXPECT_EQ(run.result.assignment.size(), dataset.num_items());
  for (const uint32_t cluster : run.result.assignment) {
    EXPECT_LT(cluster, 60u);
  }
  ASSERT_FALSE(run.result.iterations.empty());
  // The whole point: shortlists are far smaller than k.
  for (const auto& iteration : run.result.iterations) {
    EXPECT_LT(iteration.mean_shortlist, 60.0);
  }
  EXPECT_GT(run.index_stats.total_buckets, 0u);
  EXPECT_GT(run.index_memory_bytes, 0u);
}

TEST(MHKModesTest, CostMonotoneNonIncreasing) {
  const auto dataset = MakeData(400, 16, 30, 300, 23);
  MHKModesOptions options;
  options.engine.num_clusters = 30;
  options.engine.seed = 25;
  options.index.banding = {16, 2};
  const auto run = RunMHKModes(dataset, options).ValueOrDie();
  for (size_t i = 1; i < run.result.iterations.size(); ++i) {
    EXPECT_LE(run.result.iterations[i].cost,
              run.result.iterations[i - 1].cost);
  }
}

TEST(MHKModesTest, MatchesKModesOnWellSeparatedData) {
  // With pure clusters and shared seeds covering each cluster, both
  // algorithms must find the exact ground truth.
  const auto dataset = MakeData(200, 10, 4, 5000, 27, 1.0, 1.0);
  EngineOptions engine;
  engine.num_clusters = 4;
  engine.initial_seeds = {0, 1, 2, 3};

  const auto baseline = RunKModes(dataset, engine).ValueOrDie();

  MHKModesOptions options;
  options.engine = engine;
  options.index.banding = {20, 5};
  const auto accelerated = RunMHKModes(dataset, options).ValueOrDie();

  EXPECT_EQ(baseline.final_cost, 0.0);
  EXPECT_EQ(accelerated.result.final_cost, 0.0);
  EXPECT_EQ(baseline.assignment, accelerated.result.assignment);
}

TEST(MHKModesTest, ComparablePurityToBaseline) {
  // The paper's headline: comparable purity, much less work. On noisy
  // synthetic data require MH purity within 10% of the baseline.
  const auto dataset = MakeData(800, 24, 40, 4000, 29);
  ComparisonOptions options;
  options.num_clusters = 40;
  options.seed = 31;
  const auto runs = RunComparison(
                        dataset, options,
                        {KModesSpec(), MHKModesSpec(20, 5)})
                        .ValueOrDie();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_GE(runs[1].purity, runs[0].purity - 0.1);
}

TEST(MHKModesTest, DeterministicPerSeed) {
  const auto dataset = MakeData(300, 12, 20, 200, 33);
  MHKModesOptions options;
  options.engine.num_clusters = 20;
  options.engine.seed = 35;
  options.index.banding = {10, 3};
  const auto a = RunMHKModes(dataset, options).ValueOrDie();
  const auto b = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(a.result.assignment, b.result.assignment);
  EXPECT_EQ(a.result.final_cost, b.result.final_cost);
}

TEST(MHKModesTest, OneBandOneRowStillClusters) {
  // The paper's 1b 1r setting (used on Yahoo! data): coarse but valid.
  const auto dataset = MakeData(300, 12, 15, 500, 37);
  MHKModesOptions options;
  options.engine.num_clusters = 15;
  options.index.banding = {1, 1};
  const auto run = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(run.result.assignment.size(), dataset.num_items());
}

// §III-C error-bound conformance: the fraction of items whose true best
// cluster is missing from the shortlist must not exceed the analytic bound.
class ErrorBoundConformanceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ErrorBoundConformanceTest, EmpiricalMissRateBelowBound) {
  const auto [bands, rows] = GetParam();
  const uint32_t k = 25;
  const uint32_t per_cluster = 20;  // |C| for the bound
  const auto dataset =
      MakeData(k * per_cluster, 30, k, 1000, 41, 0.6, 0.9);

  ShortlistIndexOptions options;
  options.banding = {bands, rows};
  ClusterShortlistProvider provider(options, k);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  // Ground-truth assignment; modes = per-cluster majorities.
  const std::vector<uint32_t>& assignment = dataset.labels();
  ModeTable modes(k, dataset.num_attributes());
  Rng rng(43);
  modes.RecomputeFromAssignment(dataset, assignment,
                                EmptyClusterPolicy::kKeepPreviousMode, rng);

  uint32_t misses = 0;
  std::vector<uint32_t> shortlist;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    // The true best cluster by exhaustive search.
    uint32_t best_cluster = 0;
    uint32_t best_distance = ~0u;
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      const uint32_t d =
          MismatchDistance(dataset.Row(item), modes.Mode(cluster));
      if (d < best_distance) {
        best_distance = d;
        best_cluster = cluster;
      }
    }
    provider.GetCandidates(item, assignment, &shortlist);
    if (std::find(shortlist.begin(), shortlist.end(), best_cluster) ==
        shortlist.end()) {
      ++misses;
    }
  }
  const double miss_rate =
      static_cast<double>(misses) / dataset.num_items();
  const double bound = AssignmentErrorBound(dataset.num_attributes(),
                                            options.banding, per_cluster);
  // The bound is worst-case (items share >= 1 attribute with their best
  // cluster; real similarity is far higher), so the empirical rate must
  // sit clearly below it. Allow Monte-Carlo slack above tiny bounds.
  EXPECT_LE(miss_rate, std::min(1.0, bound + 0.02))
      << "b=" << bands << " r=" << rows << " bound=" << bound;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ErrorBoundConformanceTest,
                         ::testing::Values(std::make_tuple(25u, 1u),
                                           std::make_tuple(20u, 2u),
                                           std::make_tuple(20u, 5u),
                                           std::make_tuple(50u, 5u)));

// -------------------------------------------------------- error bound --

TEST(ErrorBoundTablesTest, Table1MatchesPaperValues) {
  const auto table = MakePaperTable1();
  ASSERT_EQ(table.size(), 13u);
  // Row "10 bands, s=0.1": P=0.65, MH=1.
  EXPECT_EQ(table[1].bands, 10u);
  EXPECT_NEAR(table[1].pair_probability, 0.65, 0.005);
  EXPECT_NEAR(table[1].mh_probability, 1.0, 0.005);
  // Row "800 bands, s=0.0001": P=0.077; the paper prints MH=0.52 because
  // it composes from the rounded 0.07 — the exact value is 0.551.
  EXPECT_NEAR(table[9].pair_probability, 0.07, 0.01);
  EXPECT_NEAR(table[9].mh_probability, 0.5507, 0.005);
}

TEST(ErrorBoundTablesTest, Table2MatchesPaperValues) {
  const auto table = MakePaperTable2();
  ASSERT_EQ(table.size(), 9u);
  // Row "10 bands, s=0.5": P=0.27, MH=0.96.
  EXPECT_EQ(table[2].bands, 10u);
  EXPECT_NEAR(table[2].pair_probability, 0.27, 0.01);
  EXPECT_NEAR(table[2].mh_probability, 0.96, 0.01);
}

TEST(ErrorBoundMonteCarloTest, MatchesAnalyticModel) {
  const BandingParams params{10, 1};
  const double jaccard = 0.2;
  const auto estimate =
      EstimateCollisionProbability(jaccard, params, 10, 64, 400, 7);
  EXPECT_NEAR(estimate.realized_jaccard, jaccard, 0.02);
  const double expected =
      CandidatePairProbability(estimate.realized_jaccard, params);
  EXPECT_NEAR(estimate.pair_probability, expected, 0.08);
  const double expected_cluster = ClusterCandidateProbability(
      estimate.realized_jaccard, params, 10);
  EXPECT_NEAR(estimate.cluster_probability, expected_cluster, 0.08);
}

TEST(ErrorBoundMonteCarloTest, HighSimilarityAlwaysCollides) {
  const BandingParams params{20, 2};
  const auto estimate =
      EstimateCollisionProbability(0.95, params, 5, 64, 100, 9);
  EXPECT_GT(estimate.pair_probability, 0.99);
  EXPECT_GT(estimate.cluster_probability, 0.99);
}

// --------------------------------------------------------- LSH-K-Means --

TEST(LshKMeansTest, MatchesKMeansOnSeparatedBlobs) {
  GaussianMixtureOptions data;
  data.num_items = 400;
  data.dimensions = 8;
  data.num_clusters = 8;
  data.center_box = 50.0;
  data.stddev = 0.5;
  data.seed = 47;
  const auto dataset = GenerateGaussianMixture(data).ValueOrDie();

  KMeansOptions kmeans;
  kmeans.num_clusters = 8;
  kmeans.initial_seeds = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto baseline = RunKMeans(dataset, kmeans).ValueOrDie();

  LshKMeansOptions options;
  options.kmeans = kmeans;
  options.banding = {16, 4};
  const auto accelerated = RunLshKMeans(dataset, options).ValueOrDie();

  EXPECT_EQ(baseline.assignment, accelerated.assignment);
  // Shortlists must beat exhaustive k.
  for (const auto& iteration : accelerated.iterations) {
    EXPECT_LT(iteration.mean_shortlist, 8.0);
  }
}

TEST(LshKMeansTest, InertiaMonotone) {
  GaussianMixtureOptions data;
  data.num_items = 500;
  data.dimensions = 6;
  data.num_clusters = 20;
  data.center_box = 5.0;
  data.stddev = 1.5;
  data.seed = 53;
  const auto dataset = GenerateGaussianMixture(data).ValueOrDie();

  LshKMeansOptions options;
  options.kmeans.num_clusters = 20;
  options.kmeans.seed = 55;
  options.banding = {12, 3};
  const auto result = RunLshKMeans(dataset, options).ValueOrDie();
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost,
              result.iterations[i - 1].cost + 1e-9);
  }
}

// ----------------------------------------------------------- experiment --

TEST(ExperimentTest, SharedSeedsMakeInitialConditionsEqual) {
  const auto dataset = MakeData(300, 14, 20, 400, 59);
  ComparisonOptions options;
  options.num_clusters = 20;
  options.seed = 61;
  const auto runs =
      RunComparison(dataset, options,
                    {KModesSpec(), MHKModesSpec(20, 5), MHKModesSpec(20, 2)})
          .ValueOrDie();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].spec.label, "K-Modes");
  EXPECT_EQ(runs[1].spec.label, "MH-K-Modes 20b 5r");
  EXPECT_FALSE(runs[0].has_index);
  EXPECT_TRUE(runs[1].has_index);
  for (const auto& run : runs) {
    EXPECT_GE(run.purity, 0.0);
    EXPECT_LE(run.purity, 1.0);
    EXPECT_FALSE(run.result.iterations.empty());
  }
}

TEST(ExperimentTest, RejectsEmptyMethodList) {
  const auto dataset = MakeData(50, 8, 5, 30, 63);
  ComparisonOptions options;
  options.num_clusters = 5;
  EXPECT_TRUE(RunComparison(dataset, options, {})
                  .status().IsInvalidArgument());
}

TEST(ExperimentTest, UnlabeledDatasetYieldsNoPurity) {
  auto dataset = CategoricalDataset::FromCodes(
                     20, 4, 100,
                     [] {
                       std::vector<uint32_t> codes(80);
                       Rng rng(67);
                       for (auto& code : codes) {
                         code = static_cast<uint32_t>(rng.Below(100));
                       }
                       return codes;
                     }())
                     .ValueOrDie();
  ComparisonOptions options;
  options.num_clusters = 4;
  const auto runs =
      RunComparison(dataset, options, {KModesSpec()}).ValueOrDie();
  EXPECT_LT(runs[0].purity, 0.0);  // sentinel -1
}

// ------------------------------------------------------------ reporters --

TEST(ReportersTest, IterationSeriesMentionsMethodsAndValues) {
  const auto dataset = MakeData(200, 10, 10, 100, 71);
  ComparisonOptions options;
  options.num_clusters = 10;
  const auto runs = RunComparison(dataset, options,
                                  {KModesSpec(), MHKModesSpec(10, 2)})
                        .ValueOrDie();
  std::ostringstream out;
  PrintIterationSeries(out, "Fig. X", runs, IterationField::kSeconds);
  PrintIterationSeries(out, "Fig. X", runs, IterationField::kShortlist);
  PrintIterationSeries(out, "Fig. X", runs, IterationField::kMoves);
  PrintIterationSeries(out, "Fig. X", runs, IterationField::kCost);
  const std::string text = out.str();
  EXPECT_NE(text.find("K-Modes"), std::string::npos);
  EXPECT_NE(text.find("MH-K-Modes 10b 2r"), std::string::npos);
  EXPECT_NE(text.find("avg. clusters returned"), std::string::npos);
  EXPECT_NE(text.find("moves"), std::string::npos);
}

TEST(ReportersTest, SummaryTableIncludesSpeedupAndPurity) {
  const auto dataset = MakeData(200, 10, 10, 100, 73);
  ComparisonOptions options;
  options.num_clusters = 10;
  const auto runs = RunComparison(dataset, options,
                                  {KModesSpec(), MHKModesSpec(10, 2)})
                        .ValueOrDie();
  std::ostringstream out;
  PrintSummaryTable(out, "Fig. X", runs);
  const std::string text = out.str();
  EXPECT_NE(text.find("speedup"), std::string::npos);
  EXPECT_NE(text.find("purity"), std::string::npos);
  EXPECT_NE(text.find("index:"), std::string::npos);
}

TEST(ReportersTest, CollisionTablePrintsAnalyticAndMonteCarlo) {
  const auto rows = MakePaperTable1();
  std::vector<MonteCarloEstimate> mc(rows.size());
  std::ostringstream out;
  PrintCollisionTable(out, "Table I", 1, rows, mc);
  const std::string text = out.str();
  EXPECT_NE(text.find("P(pair)"), std::string::npos);
  EXPECT_NE(text.find("MC P(pair)"), std::string::npos);
  EXPECT_NE(text.find("800"), std::string::npos);
}

TEST(ReportersTest, ExperimentHeaderShowsShape) {
  std::ostringstream out;
  PrintExperimentHeader(out, "Figure 2", 90000, 100, 20000);
  EXPECT_NE(out.str().find("90000 items"), std::string::npos);
  EXPECT_NE(out.str().find("20000 clusters"), std::string::npos);
}

}  // namespace
}  // namespace lshclust
