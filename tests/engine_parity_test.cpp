// Parity tests for the unified clustering engine: the single
// ClusteringEngine body must reproduce the per-algorithm engines it
// replaced bit-for-bit, and the batch-parallel assignment step must be
// invisible — num_threads=1 and num_threads=4 produce identical
// assignments, move counts and costs for every family, exhaustive and
// LSH-accelerated alike.
//
// The golden values below were captured from the pre-unification
// per-algorithm implementations (clustering/engine.h K-Modes,
// clustering/kmeans.h Lloyd, clustering/kprototypes.h) on these exact
// fixtures and seeds. Drift in seeding, distance kernels, update rules
// or iteration structure shows up here. One *deliberate* semantic change
// is invisible on these fixtures: shortlist queries now dereference a
// per-pass snapshot of the assignment instead of the live array (the
// price of thread-count-invariant determinism), which can alter LSH-run
// results on datasets where mid-pass moves would have changed later
// items' shortlists. The exhaustive goldens are exact regardless; the
// LSH goldens double as evidence the fixtures are insensitive to it.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "clustering/kmodes.h"
#include "clustering/kprototypes.h"
#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"

namespace lshclust {
namespace {

// FNV-1a over the assignment vector: a compact bit-for-bit fingerprint.
uint64_t AssignmentFingerprint(const std::vector<uint32_t>& assignment) {
  uint64_t hash = 1469598103934665603ULL;
  for (const uint32_t cluster : assignment) {
    hash ^= cluster;
    hash *= 1099511628211ULL;
  }
  return hash;
}

CategoricalDataset CategoricalFixture() {
  ConjunctiveDataOptions options;
  options.num_items = 300;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

NumericDataset NumericFixture() {
  GaussianMixtureOptions options;
  options.num_items = 240;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  return GenerateGaussianMixture(options).ValueOrDie();
}

MixedDataset MixedFixture() {
  MixedDataOptions options;
  options.categorical.num_items = 200;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  return GenerateMixedData(options).ValueOrDie();
}

void ExpectIdenticalRuns(const ClusteringResult& a, const ClusteringResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.converged, b.converged);
  // Costs must agree to the bit, not within a tolerance: both runs are
  // required to execute the same floating-point operations in the same
  // order.
  EXPECT_EQ(a.final_cost, b.final_cost);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].moves, b.iterations[i].moves);
    EXPECT_EQ(a.iterations[i].cost, b.iterations[i].cost);
    EXPECT_EQ(a.iterations[i].mean_shortlist, b.iterations[i].mean_shortlist);
  }
}

// ------------------------------------------ golden (pre-refactor) parity --

TEST(EngineGoldenParityTest, KModesReproducesPreUnificationResults) {
  const auto dataset = CategoricalFixture();
  EngineOptions options;
  options.num_clusters = 8;
  options.seed = 21;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(result.iterations.size(), 2u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 1711.0);
  EXPECT_EQ(result.TotalMoves(), 35u);
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x3423685dafce5648ULL);
}

TEST(EngineGoldenParityTest, MHKModesReproducesPreUnificationResults) {
  const auto dataset = CategoricalFixture();
  MHKModesOptions options;
  options.engine.num_clusters = 8;
  options.engine.seed = 21;
  options.index.banding = {8, 2};
  options.index.seed = 77;
  const auto run = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(run.result.iterations.size(), 2u);
  EXPECT_TRUE(run.result.converged);
  EXPECT_EQ(run.result.final_cost, 1711.0);
  EXPECT_EQ(run.result.TotalMoves(), 35u);
  EXPECT_EQ(AssignmentFingerprint(run.result.assignment),
            0x3423685dafce5648ULL);
}

TEST(EngineGoldenParityTest, KMeansReproducesPreUnificationResults) {
  const auto dataset = NumericFixture();
  KMeansOptions options;
  options.num_clusters = 6;
  options.seed = 33;
  const auto result = RunKMeans(dataset, options).ValueOrDie();
  EXPECT_EQ(result.iterations.size(), 5u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 3444.6286874818047);
  EXPECT_EQ(result.TotalMoves(), 14u);
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x89731a86c434c228ULL);
}

TEST(EngineGoldenParityTest, LshKMeansReproducesPreUnificationResults) {
  const auto dataset = NumericFixture();
  LshKMeansOptions options;
  options.kmeans.num_clusters = 6;
  options.kmeans.seed = 33;
  options.banding = {12, 3};
  options.seed = 55;
  const auto result = RunLshKMeans(dataset, options).ValueOrDie();
  EXPECT_EQ(result.iterations.size(), 5u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 3444.6286874818047);
  EXPECT_EQ(result.TotalMoves(), 14u);
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x89731a86c434c228ULL);
}

TEST(EngineGoldenParityTest, KPrototypesReproducesPreUnificationResults) {
  const auto dataset = MixedFixture();
  KPrototypesOptions options;
  options.num_clusters = 5;
  options.seed = 43;
  options.gamma = 0.8;
  const auto result = RunKPrototypes(dataset, options).ValueOrDie();
  EXPECT_EQ(result.iterations.size(), 2u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 1898.1575139585696);
  EXPECT_EQ(result.TotalMoves(), 4u);
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x5718db93db6e1fd5ULL);
}

TEST(EngineGoldenParityTest, LshKPrototypesReproducesPreUnificationResults) {
  const auto dataset = MixedFixture();
  LshKPrototypesOptions options;
  options.kprototypes.num_clusters = 5;
  options.kprototypes.seed = 43;
  options.kprototypes.gamma = 0.8;
  options.categorical_banding = {10, 2};
  options.numeric_banding = {6, 8};
  options.seed = 91;
  const auto result = RunLshKPrototypes(dataset, options).ValueOrDie();
  EXPECT_EQ(result.iterations.size(), 2u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 1898.1575139585696);
  EXPECT_EQ(result.TotalMoves(), 4u);
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x5718db93db6e1fd5ULL);
}

// -------------------------------------------------- thread-count parity --

TEST(EngineThreadParityTest, KModesExhaustiveAndShortlist) {
  const auto dataset = CategoricalFixture();
  EngineOptions options;
  options.num_clusters = 8;
  options.seed = 21;

  options.num_threads = 1;
  const auto exhaustive_1t = RunKModes(dataset, options).ValueOrDie();
  options.num_threads = 4;
  const auto exhaustive_4t = RunKModes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(exhaustive_1t, exhaustive_4t);

  MHKModesOptions mh;
  mh.engine = options;
  mh.index.banding = {8, 2};
  mh.index.seed = 77;
  mh.engine.num_threads = 1;
  const auto shortlist_1t = RunMHKModes(dataset, mh).ValueOrDie();
  mh.engine.num_threads = 4;
  const auto shortlist_4t = RunMHKModes(dataset, mh).ValueOrDie();
  ExpectIdenticalRuns(shortlist_1t.result, shortlist_4t.result);
}

TEST(EngineThreadParityTest, KMeansExhaustiveAndShortlist) {
  const auto dataset = NumericFixture();
  KMeansOptions options;
  options.num_clusters = 6;
  options.seed = 33;

  options.num_threads = 1;
  const auto exhaustive_1t = RunKMeans(dataset, options).ValueOrDie();
  options.num_threads = 4;
  const auto exhaustive_4t = RunKMeans(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(exhaustive_1t, exhaustive_4t);

  LshKMeansOptions lsh;
  lsh.kmeans = options;
  lsh.banding = {12, 3};
  lsh.seed = 55;
  lsh.kmeans.num_threads = 1;
  const auto shortlist_1t = RunLshKMeans(dataset, lsh).ValueOrDie();
  lsh.kmeans.num_threads = 4;
  const auto shortlist_4t = RunLshKMeans(dataset, lsh).ValueOrDie();
  ExpectIdenticalRuns(shortlist_1t, shortlist_4t);
}

TEST(EngineThreadParityTest, KPrototypesExhaustiveAndShortlist) {
  const auto dataset = MixedFixture();
  KPrototypesOptions options;
  options.num_clusters = 5;
  options.seed = 43;
  options.gamma = 0.8;

  options.num_threads = 1;
  const auto exhaustive_1t = RunKPrototypes(dataset, options).ValueOrDie();
  options.num_threads = 4;
  const auto exhaustive_4t = RunKPrototypes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(exhaustive_1t, exhaustive_4t);

  LshKPrototypesOptions lsh;
  lsh.kprototypes = options;
  lsh.categorical_banding = {10, 2};
  lsh.numeric_banding = {6, 8};
  lsh.seed = 91;
  lsh.kprototypes.num_threads = 1;
  const auto shortlist_1t = RunLshKPrototypes(dataset, lsh).ValueOrDie();
  lsh.kprototypes.num_threads = 4;
  const auto shortlist_4t = RunLshKPrototypes(dataset, lsh).ValueOrDie();
  ExpectIdenticalRuns(shortlist_1t, shortlist_4t);
}

// Larger-than-fixture K-Modes run where assignment passes actually split
// into several chunks per worker, with a banding loose enough that
// shortlists stay large and iterations keep moving items — a harder
// determinism target than the tidy fixtures above.
TEST(EngineThreadParityTest, ManyChunksManyMoves) {
  ConjunctiveDataOptions data;
  data.num_items = 5000;
  data.num_attributes = 10;
  data.num_clusters = 40;
  data.domain_size = 25;  // noisy: plenty of moves per iteration
  data.seed = 71;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  MHKModesOptions options;
  options.engine.num_clusters = 40;
  options.engine.seed = 73;
  options.index.banding = {6, 1};  // aggressive recall -> big shortlists
  options.index.seed = 75;

  options.engine.num_threads = 1;
  const auto run_1t = RunMHKModes(dataset, options).ValueOrDie();
  options.engine.num_threads = 4;
  const auto run_4t = RunMHKModes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(run_1t.result, run_4t.result);
  EXPECT_GT(run_1t.result.TotalMoves(), 0u);
}

// Numeric twin of ManyChunksManyMoves: floating-point distances across
// several chunks per pass, exhaustive and SimHash-shortlist.
TEST(EngineThreadParityTest, ManyChunksNumeric) {
  GaussianMixtureOptions data;
  data.num_items = 4000;
  data.dimensions = 8;
  data.num_clusters = 25;
  data.stddev = 3.0;  // heavy overlap: moves keep happening
  data.seed = 81;
  const auto dataset = GenerateGaussianMixture(data).ValueOrDie();

  KMeansOptions options;
  options.num_clusters = 25;
  options.seed = 83;
  options.max_iterations = 15;

  options.num_threads = 1;
  const auto exhaustive_1t = RunKMeans(dataset, options).ValueOrDie();
  options.num_threads = 4;
  const auto exhaustive_4t = RunKMeans(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(exhaustive_1t, exhaustive_4t);
  EXPECT_GT(exhaustive_1t.TotalMoves(), 0u);

  LshKMeansOptions lsh;
  lsh.kmeans = options;
  lsh.banding = {16, 2};
  lsh.seed = 85;
  lsh.kmeans.num_threads = 1;
  const auto shortlist_1t = RunLshKMeans(dataset, lsh).ValueOrDie();
  lsh.kmeans.num_threads = 4;
  const auto shortlist_4t = RunLshKMeans(dataset, lsh).ValueOrDie();
  ExpectIdenticalRuns(shortlist_1t, shortlist_4t);
}

// --------------------------------------------------------- shard parity --
//
// The two-level (shard -> chunk) decomposition must be invisible in the
// results: every (num_shards x num_threads) combination produces the
// bit-identical run, for exhaustive and shortlist providers alike, and
// S=1 is the historical flat decomposition (the golden tests above pin
// that).

TEST(EngineShardParityTest, ShardSweepMatchesUnshardedAtEveryThreadCount) {
  ConjunctiveDataOptions data;
  data.num_items = 2500;
  data.num_attributes = 10;
  data.num_clusters = 20;
  data.domain_size = 25;  // noisy: plenty of moves per iteration
  data.seed = 91;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  MHKModesOptions options;
  options.engine.num_clusters = 20;
  options.engine.seed = 93;
  options.engine.chunk_size = 256;  // several chunks per shard
  options.index.banding = {6, 1};   // aggressive recall -> big shortlists
  options.index.seed = 95;

  options.engine.num_shards = 1;
  options.engine.num_threads = 1;
  const auto baseline = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_GT(baseline.result.TotalMoves(), 0u);

  for (const uint32_t shards : {1u, 2u, 3u, 8u}) {
    for (const uint32_t threads : {1u, 2u, 4u}) {
      options.engine.num_shards = shards;
      options.engine.num_threads = threads;
      const auto run = RunMHKModes(dataset, options).ValueOrDie();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ExpectIdenticalRuns(baseline.result, run.result);
    }
  }
}

TEST(EngineShardParityTest, ExhaustiveNumericShardSweep) {
  const auto dataset = NumericFixture();
  KMeansOptions options;
  options.num_clusters = 6;
  options.seed = 33;
  const auto baseline = RunKMeans(dataset, options).ValueOrDie();

  for (const uint32_t shards : {2u, 3u, 8u}) {
    for (const uint32_t threads : {1u, 2u, 4u}) {
      options.num_shards = shards;
      options.num_threads = threads;
      options.chunk_size = 50;
      const auto run = RunKMeans(dataset, options).ValueOrDie();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ExpectIdenticalRuns(baseline, run);
    }
  }
}

TEST(EngineShardParityTest, ChunkSizeIsInvisible) {
  // The runtime chunk_size knob (the NUMA/tuning study's subject) must
  // never change results — including chunks of one item and chunks far
  // bigger than the dataset.
  const auto dataset = CategoricalFixture();
  MHKModesOptions options;
  options.engine.num_clusters = 8;
  options.engine.seed = 21;
  options.index.banding = {8, 2};
  options.index.seed = 77;
  const auto baseline = RunMHKModes(dataset, options).ValueOrDie();

  // ~0u is the overflow regression: a near-2^32 chunk size once wrapped
  // the per-shard chunk count to zero, silently skipping every item.
  for (const uint32_t chunk_size : {1u, 7u, 100u, 4096u, 1000000u, ~0u}) {
    for (const uint32_t threads : {1u, 2u}) {
      options.engine.chunk_size = chunk_size;
      options.engine.num_threads = threads;
      options.engine.num_shards = 2;
      const auto run = RunMHKModes(dataset, options).ValueOrDie();
      SCOPED_TRACE("chunk_size=" + std::to_string(chunk_size) +
                   " threads=" + std::to_string(threads));
      ExpectIdenticalRuns(baseline.result, run.result);
    }
  }
}

TEST(EngineShardParityTest, MoreShardsThanItems) {
  // Shard counts beyond the flat chunk count are clamped (a shard
  // smaller than one chunk cannot split further); the run must still be
  // bit-identical to the unsharded one. Genuinely empty shards are
  // covered at the plan level in tests/shard_test.cpp.
  ConjunctiveDataOptions data;
  data.num_items = 5;
  data.num_attributes = 6;
  data.num_clusters = 3;
  data.domain_size = 12;
  data.seed = 101;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  MHKModesOptions options;
  options.engine.num_clusters = 3;
  options.engine.seed = 103;
  options.index.banding = {4, 2};
  const auto baseline = RunMHKModes(dataset, options).ValueOrDie();

  options.engine.num_shards = 8;  // > n = 5
  options.engine.num_threads = 4;
  const auto sharded = RunMHKModes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(baseline.result, sharded.result);

  // Degenerate-but-legal extreme: 2^32-1 shards must neither overflow
  // the plan (regression: num_shards + 1 wrapped to 0 and wrote out of
  // bounds) nor allocate per-shard state beyond n shards.
  options.engine.num_shards = ~0u;
  const auto extreme = RunMHKModes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(baseline.result, extreme.result);
}

TEST(EngineShardParityTest, SingleClusterDegenerates) {
  // k=1: every shortlist is {0}, every item stays put after the first
  // pass, and the sharded run must agree with the flat one.
  const auto dataset = CategoricalFixture();
  MHKModesOptions options;
  options.engine.num_clusters = 1;
  options.engine.seed = 7;
  options.index.banding = {4, 2};
  const auto baseline = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(baseline.result.converged);

  options.engine.num_shards = 3;
  options.engine.num_threads = 2;
  options.engine.chunk_size = 64;
  const auto sharded = RunMHKModes(dataset, options).ValueOrDie();
  ExpectIdenticalRuns(baseline.result, sharded.result);
  for (const uint32_t cluster : sharded.result.assignment) {
    EXPECT_EQ(cluster, 0u);
  }
}

TEST(EngineShardParityTest, RejectsZeroShardsAndZeroChunkSize) {
  const auto dataset = CategoricalFixture();
  EngineOptions options;
  options.num_clusters = 8;
  options.num_shards = 0;
  EXPECT_TRUE(RunKModes(dataset, options).status().IsInvalidArgument());
  options.num_shards = 1;
  options.chunk_size = 0;
  EXPECT_TRUE(RunKModes(dataset, options).status().IsInvalidArgument());
}

// The unified engine must also accept an exhaustive provider through the
// generic entry point with threads (regression for the provider concept
// detection: ExhaustiveProvider has no scratch and must not be asked for
// one).
TEST(EngineThreadParityTest, ExhaustiveProviderHasNoScratchRequirement) {
  const auto dataset = NumericFixture();
  KMeansOptions options;
  options.num_clusters = 6;
  options.seed = 33;
  options.num_threads = 3;
  ExhaustiveProvider provider;
  const auto result =
      RunKMeansEngine(dataset, options, provider).ValueOrDie();
  EXPECT_EQ(AssignmentFingerprint(result.assignment), 0x89731a86c434c228ULL);
}

}  // namespace
}  // namespace lshclust
