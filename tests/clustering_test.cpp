// Unit tests for src/clustering: dissimilarity kernels, mode computation,
// initializers, K-Modes, K-Means and mini-batch K-Means.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clustering/dissimilarity.h"
#include "clustering/initializers.h"
#include "clustering/kmeans.h"
#include "clustering/kmodes.h"
#include "clustering/modes.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"

namespace lshclust {
namespace {

// ---------------------------------------------------------- dissimilarity --

TEST(DissimilarityTest, CountsMismatches) {
  const std::vector<uint32_t> a{1, 2, 3, 4};
  const std::vector<uint32_t> b{1, 9, 3, 8};
  EXPECT_EQ(MismatchDistance(a, b), 2u);
  EXPECT_EQ(MismatchDistance(a, a), 0u);
}

TEST(DissimilarityTest, SymmetricAndBounded) {
  const std::vector<uint32_t> a{1, 2, 3};
  const std::vector<uint32_t> b{4, 5, 6};
  EXPECT_EQ(MismatchDistance(a, b), MismatchDistance(b, a));
  EXPECT_EQ(MismatchDistance(a, b), 3u);  // max = m
}

TEST(DissimilarityTest, BoundedKernelAgreesBelowBound) {
  // For distances strictly below the bound, the early-exit kernel must
  // return the exact count.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t m = 1 + static_cast<uint32_t>(rng.Below(64));
    std::vector<uint32_t> a(m), b(m);
    for (uint32_t j = 0; j < m; ++j) {
      a[j] = static_cast<uint32_t>(rng.Below(4));
      b[j] = rng.Bernoulli(0.3) ? a[j] : a[j] + 10;
    }
    const uint32_t exact = MismatchDistance(a, b);
    const uint32_t bounded =
        BoundedMismatchDistance(a.data(), b.data(), m, m + 1);
    EXPECT_EQ(bounded, exact);
    // With bound <= exact, the kernel must return something >= bound.
    if (exact > 0) {
      EXPECT_GE(BoundedMismatchDistance(a.data(), b.data(), m, exact), exact);
    }
  }
}

TEST(DissimilarityTest, BoundedKernelHandlesNonMultipleOf16Lengths) {
  for (uint32_t m : {1u, 15u, 16u, 17u, 31u, 33u, 100u}) {
    std::vector<uint32_t> a(m, 1), b(m, 2);
    EXPECT_EQ(BoundedMismatchDistance(a.data(), b.data(), m, m + 1), m);
  }
}

TEST(DissimilarityTest, JaccardFromMatches) {
  // q matches of m attributes: s = q / (2m - q).
  EXPECT_DOUBLE_EQ(JaccardFromMatches(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(JaccardFromMatches(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(JaccardFromMatches(1, 100), 1.0 / 199.0);
  EXPECT_DOUBLE_EQ(JaccardFromMatches(50, 100), 50.0 / 150.0);
}

// ------------------------------------------------------------------ modes --

CategoricalDataset SmallDataset() {
  // 6 items x 2 attributes; codes chosen by hand.
  return CategoricalDataset::FromCodes(
             6, 2, 10,
             {1, 5,   // cluster 0
              1, 6,   // cluster 0
              1, 5,   // cluster 0
              2, 7,   // cluster 1
              3, 7,   // cluster 1
              2, 7})  // cluster 1
      .ValueOrDie();
}

TEST(ModeTableTest, ComputesPerAttributeMajority) {
  const auto dataset = SmallDataset();
  ModeTable modes(2, 2);
  Rng rng(1);
  const std::vector<uint32_t> assignment{0, 0, 0, 1, 1, 1};
  modes.RecomputeFromAssignment(dataset, assignment,
                                EmptyClusterPolicy::kKeepPreviousMode, rng);
  EXPECT_EQ(modes.Mode(0)[0], 1u);  // 1 appears 3x
  EXPECT_EQ(modes.Mode(0)[1], 5u);  // 5 appears 2x, 6 once
  EXPECT_EQ(modes.Mode(1)[0], 2u);  // 2 appears 2x, 3 once
  EXPECT_EQ(modes.Mode(1)[1], 7u);
  EXPECT_EQ(modes.cluster_sizes(), (std::vector<uint32_t>{3, 3}));
}

TEST(ModeTableTest, ModeMinimizesTotalDissimilarity) {
  // Theorem: the per-attribute majority minimises D(X, Q). Verify by
  // exhaustive search on a random small instance.
  Rng rng(5);
  const uint32_t n = 40, m = 3, domain = 4;
  std::vector<uint32_t> codes(n * m);
  for (auto& code : codes) code = static_cast<uint32_t>(rng.Below(domain));
  const auto dataset =
      CategoricalDataset::FromCodes(n, m, domain, codes).ValueOrDie();

  ModeTable modes(1, m);
  const std::vector<uint32_t> assignment(n, 0);
  modes.RecomputeFromAssignment(dataset, assignment,
                                EmptyClusterPolicy::kKeepPreviousMode, rng);
  uint64_t mode_cost = 0;
  for (uint32_t i = 0; i < n; ++i) {
    mode_cost += MismatchDistance(dataset.Row(i), modes.Mode(0));
  }
  // Exhaustive: every candidate mode in domain^m.
  for (uint32_t c0 = 0; c0 < domain; ++c0) {
    for (uint32_t c1 = 0; c1 < domain; ++c1) {
      for (uint32_t c2 = 0; c2 < domain; ++c2) {
        const std::vector<uint32_t> candidate{c0, c1, c2};
        uint64_t cost = 0;
        for (uint32_t i = 0; i < n; ++i) {
          cost += MismatchDistance(dataset.Row(i), candidate);
        }
        EXPECT_GE(cost, mode_cost);
      }
    }
  }
}

TEST(ModeTableTest, TieBreaksToSmallestCode) {
  const auto dataset =
      CategoricalDataset::FromCodes(2, 1, 5, {4, 2}).ValueOrDie();
  ModeTable modes(1, 1);
  Rng rng(1);
  modes.RecomputeFromAssignment(dataset, std::vector<uint32_t>{0, 0},
                                EmptyClusterPolicy::kKeepPreviousMode, rng);
  EXPECT_EQ(modes.Mode(0)[0], 2u);  // both appear once; smaller code wins
}

TEST(ModeTableTest, EmptyClusterKeepsPreviousMode) {
  const auto dataset = SmallDataset();
  ModeTable modes(3, 2);
  modes.SetModeFromItem(2, dataset, 5);
  const std::vector<uint32_t> before(modes.Mode(2).begin(),
                                     modes.Mode(2).end());
  Rng rng(1);
  const std::vector<uint32_t> assignment{0, 0, 0, 1, 1, 1};  // cluster 2 empty
  modes.RecomputeFromAssignment(dataset, assignment,
                                EmptyClusterPolicy::kKeepPreviousMode, rng);
  EXPECT_EQ(std::vector<uint32_t>(modes.Mode(2).begin(), modes.Mode(2).end()),
            before);
  EXPECT_EQ(modes.cluster_sizes()[2], 0u);
}

TEST(ModeTableTest, EmptyClusterReseedsFromItem) {
  const auto dataset = SmallDataset();
  ModeTable modes(3, 2);
  Rng rng(1);
  const std::vector<uint32_t> assignment{0, 0, 0, 1, 1, 1};
  modes.RecomputeFromAssignment(dataset, assignment,
                                EmptyClusterPolicy::kReseedRandomItem, rng);
  // The reseeded mode must equal some item's row.
  bool matches_an_item = false;
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    if (MismatchDistance(dataset.Row(i), modes.Mode(2)) == 0) {
      matches_an_item = true;
    }
  }
  EXPECT_TRUE(matches_an_item);
}

TEST(ModeTableTest, SetModeFromItemCopiesRow) {
  const auto dataset = SmallDataset();
  ModeTable modes(1, 2);
  modes.SetModeFromItem(0, dataset, 3);
  EXPECT_EQ(MismatchDistance(modes.Mode(0), dataset.Row(3)), 0u);
}

// ----------------------------------------------------------- initializers --

CategoricalDataset InitDataset() {
  ConjunctiveDataOptions options;
  options.num_items = 200;
  options.num_attributes = 8;
  options.num_clusters = 10;
  options.domain_size = 6;
  options.seed = 3;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

TEST(InitializerTest, RandomSeedsDistinctAndInRange) {
  const auto dataset = InitDataset();
  Rng rng(9);
  const auto seeds = SelectRandomSeeds(dataset, 20, rng).ValueOrDie();
  EXPECT_EQ(seeds.size(), 20u);
  std::set<uint32_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const uint32_t seed : seeds) EXPECT_LT(seed, dataset.num_items());
}

TEST(InitializerTest, RejectsBadK) {
  const auto dataset = InitDataset();
  Rng rng(9);
  EXPECT_TRUE(SelectRandomSeeds(dataset, 0, rng).status().IsInvalidArgument());
  EXPECT_TRUE(SelectRandomSeeds(dataset, dataset.num_items() + 1, rng)
                  .status().IsInvalidArgument());
}

TEST(InitializerTest, HuangSeedsAreDistinctItems) {
  const auto dataset = InitDataset();
  Rng rng(9);
  const auto seeds = SelectHuangSeeds(dataset, 10, rng).ValueOrDie();
  EXPECT_EQ(seeds.size(), 10u);
  std::set<uint32_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(InitializerTest, CaoIsDeterministicAndSpreadsSeeds) {
  const auto dataset = InitDataset();
  Rng rng1(9), rng2(42);
  const auto a = SelectCaoSeeds(dataset, 8, rng1).ValueOrDie();
  const auto b = SelectCaoSeeds(dataset, 8, rng2).ValueOrDie();
  EXPECT_EQ(a, b);  // density-distance method ignores the RNG
  std::set<uint32_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 8u);
  // Consecutive Cao seeds must not be identical items.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(MismatchDistance(dataset.Row(a[i]), dataset.Row(a[0])), 0u);
  }
}

TEST(InitializerTest, DispatchMatchesDirectCalls) {
  const auto dataset = InitDataset();
  Rng rng1(5), rng2(5);
  EXPECT_EQ(SelectSeeds(dataset, 6, InitMethod::kRandom, rng1).ValueOrDie(),
            SelectRandomSeeds(dataset, 6, rng2).ValueOrDie());
}

// ----------------------------------------------------------------- kmodes --

CategoricalDataset EasyClusters(uint32_t per_cluster = 20) {
  // 4 well-separated clusters over 6 attributes: rule fixes everything.
  ConjunctiveDataOptions options;
  options.num_items = per_cluster * 4;
  options.num_attributes = 6;
  options.num_clusters = 4;
  options.domain_size = 50;
  options.min_rule_fraction = 1.0;  // all attributes fixed: zero noise
  options.max_rule_fraction = 1.0;
  options.seed = 77;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

TEST(KModesTest, RecoversWellSeparatedClusters) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 4;
  // Items are dealt to clusters round-robin, so 0..3 cover all clusters;
  // with fully-fixed rules random seeds could start all in one cluster.
  options.initial_seeds = {0, 1, 2, 3};
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 0.0);  // pure clusters have zero mismatch
  // All items with equal labels share a cluster.
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    for (uint32_t j = i + 1; j < dataset.num_items(); ++j) {
      if (dataset.labels()[i] == dataset.labels()[j]) {
        EXPECT_EQ(result.assignment[i], result.assignment[j]);
      }
    }
  }
}

TEST(KModesTest, CostIsMonotoneNonIncreasing) {
  ConjunctiveDataOptions data;
  data.num_items = 300;
  data.num_attributes = 12;
  data.num_clusters = 15;
  data.domain_size = 8;  // noisy, overlapping clusters
  data.seed = 13;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  EngineOptions options;
  options.num_clusters = 15;
  options.seed = 21;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  ASSERT_GE(result.iterations.size(), 1u);
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost, result.iterations[i - 1].cost)
        << "iteration " << i;
  }
}

TEST(KModesTest, ConvergedRunEndsWithZeroMoves) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 4;
  options.seed = 5;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations.back().moves, 0u);
}

TEST(KModesTest, RespectsMaxIterations) {
  ConjunctiveDataOptions data;
  data.num_items = 400;
  data.num_attributes = 10;
  data.num_clusters = 40;
  data.domain_size = 4;  // heavy overlap: slow convergence
  data.seed = 17;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  EngineOptions options;
  options.num_clusters = 40;
  options.max_iterations = 2;
  options.seed = 3;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_LE(result.iterations.size(), 2u);
}

TEST(KModesTest, ExplicitSeedsAreUsed) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 4;
  options.initial_seeds = {0, 1, 2, 3};  // one item of each cluster
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 0.0);
}

TEST(KModesTest, BaselineShortlistEqualsK) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 4;
  options.seed = 5;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  for (const auto& iteration : result.iterations) {
    EXPECT_DOUBLE_EQ(iteration.mean_shortlist, 4.0);
  }
}

TEST(KModesTest, ValidatesOptions) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(RunKModes(dataset, options).status().IsInvalidArgument());
  options.num_clusters = dataset.num_items() + 1;
  EXPECT_TRUE(RunKModes(dataset, options).status().IsInvalidArgument());
  options.num_clusters = 4;
  options.initial_seeds = {0, 1};  // wrong arity
  EXPECT_TRUE(RunKModes(dataset, options).status().IsInvalidArgument());
  options.initial_seeds = {0, 1, 2, 1000000};  // out of range
  EXPECT_TRUE(RunKModes(dataset, options).status().IsOutOfRange());
}

TEST(KModesTest, KEqualsNGivesZeroCost) {
  const auto dataset = EasyClusters(/*per_cluster=*/3);
  EngineOptions options;
  options.num_clusters = dataset.num_items();
  std::vector<uint32_t> seeds(dataset.num_items());
  for (uint32_t i = 0; i < dataset.num_items(); ++i) seeds[i] = i;
  options.initial_seeds = seeds;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(result.final_cost, 0.0);
}

TEST(KModesTest, KEqualsOnePutsEverythingTogether) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 1;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  for (const uint32_t cluster : result.assignment) EXPECT_EQ(cluster, 0u);
}

TEST(KModesTest, EarlyExitMatchesExactKernel) {
  ConjunctiveDataOptions data;
  data.num_items = 250;
  data.num_attributes = 10;
  data.num_clusters = 12;
  data.domain_size = 6;
  data.seed = 29;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  EngineOptions options;
  options.num_clusters = 12;
  options.seed = 31;
  options.early_exit = true;
  const auto fast = RunKModes(dataset, options).ValueOrDie();
  options.early_exit = false;
  const auto slow = RunKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(fast.assignment, slow.assignment);
  EXPECT_EQ(fast.final_cost, slow.final_cost);
  EXPECT_EQ(fast.iterations.size(), slow.iterations.size());
}

TEST(KModesTest, DeterministicPerSeed) {
  const auto dataset = EasyClusters();
  EngineOptions options;
  options.num_clusters = 4;
  options.seed = 11;
  const auto a = RunKModes(dataset, options).ValueOrDie();
  const auto b = RunKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.final_cost, b.final_cost);
}

TEST(KModesTest, EmptyDatasetRejected) {
  auto dataset = CategoricalDataset::FromCodes(0, 1, 1, {});
  ASSERT_TRUE(dataset.ok());
  EngineOptions options;
  options.num_clusters = 1;
  EXPECT_TRUE(RunKModes(*dataset, options).status().IsInvalidArgument());
}

// ----------------------------------------------------------------- kmeans --

NumericDataset EasyBlobs() {
  GaussianMixtureOptions options;
  options.num_items = 300;
  options.dimensions = 4;
  options.num_clusters = 3;
  options.center_box = 50.0;
  options.stddev = 0.5;  // tiny spread: trivially separable
  options.seed = 19;
  return GenerateGaussianMixture(options).ValueOrDie();
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const auto dataset = EasyBlobs();
  KMeansOptions options;
  options.num_clusters = 3;
  options.initial_seeds = {0, 1, 2};  // one per blob (round-robin labels)
  const auto result = RunKMeans(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    for (uint32_t j = i + 1; j < dataset.num_items(); ++j) {
      if (dataset.labels()[i] == dataset.labels()[j]) {
        EXPECT_EQ(result.assignment[i], result.assignment[j]);
      }
    }
  }
}

TEST(KMeansTest, InertiaMonotoneNonIncreasing) {
  GaussianMixtureOptions data;
  data.num_items = 500;
  data.dimensions = 6;
  data.num_clusters = 10;
  data.center_box = 3.0;  // overlapping blobs
  data.stddev = 2.0;
  data.seed = 23;
  const auto dataset = GenerateGaussianMixture(data).ValueOrDie();

  KMeansOptions options;
  options.num_clusters = 10;
  options.seed = 7;
  const auto result = RunKMeans(dataset, options).ValueOrDie();
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost, result.iterations[i - 1].cost + 1e-9);
  }
}

TEST(KMeansTest, EarlyExitMatchesExactKernel) {
  const auto dataset = EasyBlobs();
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 13;
  options.early_exit = true;
  const auto fast = RunKMeans(dataset, options).ValueOrDie();
  options.early_exit = false;
  const auto slow = RunKMeans(dataset, options).ValueOrDie();
  EXPECT_EQ(fast.assignment, slow.assignment);
  EXPECT_DOUBLE_EQ(fast.final_cost, slow.final_cost);
}

TEST(KMeansTest, ValidatesOptions) {
  const auto dataset = EasyBlobs();
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(RunKMeans(dataset, options).status().IsInvalidArgument());
}

TEST(MiniBatchKMeansTest, ConvergesToReasonableInertia) {
  const auto dataset = EasyBlobs();

  KMeansOptions exact_options;
  exact_options.num_clusters = 3;
  exact_options.initial_seeds = {0, 1, 2};
  const auto exact = RunKMeans(dataset, exact_options).ValueOrDie();

  MiniBatchKMeansOptions options;
  options.num_clusters = 3;
  options.batch_size = 64;
  options.num_batches = 200;
  options.seed = 3;
  const auto result = RunMiniBatchKMeans(dataset, options).ValueOrDie();
  EXPECT_EQ(result.assignment.size(), dataset.num_items());
  // Mini-batch pays an inertia penalty but must stay in the ballpark.
  EXPECT_LT(result.final_cost, std::max(exact.final_cost * 3.0,
                                        exact.final_cost + 100.0));
}

TEST(MiniBatchKMeansTest, ValidatesOptions) {
  const auto dataset = EasyBlobs();
  MiniBatchKMeansOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(RunMiniBatchKMeans(dataset, options).status()
                  .IsInvalidArgument());
  options.num_clusters = 3;
  options.batch_size = 0;
  EXPECT_TRUE(RunMiniBatchKMeans(dataset, options).status()
                  .IsInvalidArgument());
}

TEST(NumericDatasetTest, FromValuesValidates) {
  EXPECT_TRUE(NumericDataset::FromValues(2, 3, {1.0, 2.0})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(NumericDataset::FromValues(2, 1, {1.0, 2.0}, {0})
                  .status().IsInvalidArgument());
  auto ok = NumericDataset::FromValues(2, 1, {1.0, 2.0}, {0, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->Row(1)[0], 2.0);
}

}  // namespace
}  // namespace lshclust
