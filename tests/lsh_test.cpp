// Unit and property tests for src/lsh: the flat hash map, the analytic
// probability model (Tables I/II values), and the banding index.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "hashing/minhash.h"
#include "lsh/banded_index.h"
#include "lsh/flat_hash_table.h"
#include "lsh/probability.h"
#include "util/rng.h"

namespace lshclust {
namespace {

// ---------------------------------------------------------- FlatHashMap64 --

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap64 map;
  EXPECT_EQ(map.size(), 0u);
  *map.FindOrInsert(42, 7) = 7;
  EXPECT_EQ(map.size(), 1u);
  const uint32_t* found = map.Find(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 7u);
  EXPECT_EQ(map.Find(43), nullptr);
}

TEST(FlatHashMapTest, FindOrInsertReturnsExistingSlot) {
  FlatHashMap64 map;
  uint32_t* slot = map.FindOrInsert(10, 1);
  EXPECT_EQ(*slot, 1u);
  *slot = 99;
  EXPECT_EQ(*map.FindOrInsert(10, 1), 99u);  // initial ignored when present
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowsPastInitialCapacity) {
  FlatHashMap64 map(4);
  for (uint64_t key = 0; key < 10000; ++key) {
    *map.FindOrInsert(key * 2654435761ULL, 0) =
        static_cast<uint32_t>(key);
  }
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t key = 0; key < 10000; ++key) {
    const uint32_t* found = map.Find(key * 2654435761ULL);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, static_cast<uint32_t>(key));
  }
}

TEST(FlatHashMapTest, HandlesAdversarialKeys) {
  // Keys 0, max, and dense sequences must all round-trip.
  FlatHashMap64 map;
  *map.FindOrInsert(0, 0) = 100;
  *map.FindOrInsert(~0ULL, 0) = 200;
  for (uint64_t key = 1; key <= 1000; ++key) *map.FindOrInsert(key, 0) = 1;
  EXPECT_EQ(*map.Find(0), 100u);
  EXPECT_EQ(*map.Find(~0ULL), 200u);
  EXPECT_EQ(map.size(), 1002u);
}

TEST(FlatHashMapTest, ClearKeepsCapacityDropsEntries) {
  FlatHashMap64 map;
  for (uint64_t key = 0; key < 100; ++key) map.FindOrInsert(key, 1);
  const size_t capacity = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.Find(5), nullptr);
  map.FindOrInsert(5, 3);
  EXPECT_EQ(*map.Find(5), 3u);
}

TEST(FlatHashMapTest, ForEachVisitsAllEntriesOnce) {
  FlatHashMap64 map;
  for (uint64_t key = 100; key < 200; ++key) {
    *map.FindOrInsert(key, 0) = static_cast<uint32_t>(key * 3);
  }
  std::map<uint64_t, uint32_t> seen;
  map.ForEach([&](uint64_t key, uint32_t value) { seen[key] = value; });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen[150], 450u);
}

TEST(FlatHashMapTest, ReserveAvoidsIncrementalGrowth) {
  FlatHashMap64 map;
  map.Reserve(100000);
  const size_t capacity = map.capacity();
  for (uint64_t key = 0; key < 100000; ++key) map.FindOrInsert(key, 0);
  EXPECT_EQ(map.capacity(), capacity);  // no rehash happened
}

TEST(FlatHashMapTest, MatchesStdMapUnderRandomWorkload) {
  FlatHashMap64 map;
  std::map<uint64_t, uint32_t> reference;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.Below(5000);  // force key reuse
    const uint32_t value = static_cast<uint32_t>(rng.Below(1000));
    *map.FindOrInsert(key, value) = value;
    reference[key] = value;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const uint32_t* found = map.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  }
}

// ------------------------------------------------------------ probability --

TEST(ProbabilityTest, PaperWorkedExample) {
  // §III-C: m=100, r=1, b=25, cluster of 20 items -> error <= 0.08.
  const double bound =
      AssignmentErrorBound(100, BandingParams{25, 1}, 20);
  EXPECT_NEAR(bound, 0.08, 0.005);
}

TEST(ProbabilityTest, PaperFootnoteExample) {
  // §III-D footnote: pair probability 0.1, 50 items -> 1-(1-0.1)^50 = 0.99.
  // With b=1, r=1 and s=0.1 the pair probability is exactly s.
  const double p =
      ClusterCandidateProbability(0.1, BandingParams{1, 1}, 50);
  EXPECT_NEAR(p, 1.0 - std::pow(0.9, 50), 1e-12);
  EXPECT_NEAR(p, 0.99, 0.005);
}

TEST(ProbabilityTest, TableOneSpotValues) {
  // Rows of Table I (r = 1): bands, jaccard -> P(pair), P(MH) at 10 items.
  // Expected values are the exact evaluations of the paper's own formula
  // 1-(1-s^r)^b (and its composition for the MH column). Note: the paper's
  // printed rows (100, 0.001) and (100, 0.01) contradict that formula
  // (they print 0.009/0.3 where the formula gives 0.095/0.634); all other
  // rows match once the MH column is derived from the *rounded* pair
  // column. We pin the analytic values — see EXPERIMENTS.md (Table I
  // erratum).
  struct Row {
    uint32_t bands;
    double s, pair, mh;
  };
  const Row rows[] = {
      {10, 0.01, 0.0956, 0.6340},  {10, 0.1, 0.6513, 1.0},
      {10, 0.5, 0.9990, 1.0},      {100, 0.001, 0.0952, 0.6326},
      {100, 0.01, 0.6340, 1.0},    {100, 0.1, 1.0, 1.0},
      {800, 0.001, 0.5507, 0.9997}, {800, 0.0001, 0.0769, 0.5507},
  };
  for (const auto& row : rows) {
    const BandingParams params{row.bands, 1};
    EXPECT_NEAR(CandidatePairProbability(row.s, params), row.pair, 0.005)
        << "bands=" << row.bands << " s=" << row.s;
    EXPECT_NEAR(ClusterCandidateProbability(row.s, params, 10), row.mh, 0.005)
        << "bands=" << row.bands << " s=" << row.s;
  }
}

TEST(ProbabilityTest, TableTwoSpotValues) {
  // Rows of Table II (r = 5).
  struct Row {
    uint32_t bands;
    double s, pair, mh;
  };
  const Row rows[] = {
      {10, 0.1, 0.0001, 0.001}, {10, 0.5, 0.27, 0.96}, {10, 0.8, 0.98, 1.0},
      {100, 0.5, 0.95, 1.0},    {800, 0.2, 0.23, 0.93}, {800, 0.3, 0.86, 1.0},
  };
  for (const auto& row : rows) {
    const BandingParams params{row.bands, 5};
    EXPECT_NEAR(CandidatePairProbability(row.s, params), row.pair, 0.011)
        << "bands=" << row.bands << " s=" << row.s;
    EXPECT_NEAR(ClusterCandidateProbability(row.s, params, 10), row.mh, 0.011)
        << "bands=" << row.bands << " s=" << row.s;
  }
}

TEST(ProbabilityTest, ThresholdSimilarityFormula) {
  EXPECT_NEAR(ThresholdSimilarity(BandingParams{20, 5}),
              std::pow(1.0 / 20.0, 0.2), 1e-12);
  EXPECT_DOUBLE_EQ(ThresholdSimilarity(BandingParams{1, 1}), 1.0);
  // More bands lower the threshold; more rows raise it.
  EXPECT_LT(ThresholdSimilarity(BandingParams{50, 5}),
            ThresholdSimilarity(BandingParams{20, 5}));
  EXPECT_GT(ThresholdSimilarity(BandingParams{20, 5}),
            ThresholdSimilarity(BandingParams{20, 2}));
}

TEST(ProbabilityTest, PairProbabilityMonotoneInSimilarityAndBands) {
  const BandingParams base{20, 5};
  double previous = -1;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = CandidatePairProbability(s, base);
    EXPECT_GE(p, previous);
    previous = p;
  }
  EXPECT_LT(CandidatePairProbability(0.4, BandingParams{10, 5}),
            CandidatePairProbability(0.4, BandingParams{50, 5}));
}

TEST(ProbabilityTest, BoundaryValues) {
  const BandingParams params{20, 5};
  EXPECT_DOUBLE_EQ(CandidatePairProbability(0.0, params), 0.0);
  EXPECT_DOUBLE_EQ(CandidatePairProbability(1.0, params), 1.0);
  EXPECT_DOUBLE_EQ(ClusterCandidateProbability(1.0, params, 5), 1.0);
  EXPECT_DOUBLE_EQ(ClusterCandidateProbability(0.0, params, 5), 0.0);
}

TEST(ProbabilityTest, ClusterProbabilityIncreasesWithClusterSize) {
  const BandingParams params{10, 2};
  EXPECT_LT(ClusterCandidateProbability(0.2, params, 1),
            ClusterCandidateProbability(0.2, params, 10));
  EXPECT_LT(ClusterCandidateProbability(0.2, params, 10),
            ClusterCandidateProbability(0.2, params, 100));
}

TEST(ProbabilityTest, MinJaccardSharedAttribute) {
  EXPECT_DOUBLE_EQ(MinJaccardSharedAttribute(1), 1.0);
  EXPECT_DOUBLE_EQ(MinJaccardSharedAttribute(100), 1.0 / 199.0);
}

TEST(ProbabilityTest, ErrorBoundShrinksWithMoreBandsAndBiggerClusters) {
  EXPECT_GT(AssignmentErrorBound(100, BandingParams{10, 1}, 20),
            AssignmentErrorBound(100, BandingParams{50, 1}, 20));
  EXPECT_GT(AssignmentErrorBound(100, BandingParams{25, 1}, 5),
            AssignmentErrorBound(100, BandingParams{25, 1}, 50));
}

// ------------------------------------------------------------ BandedIndex --

std::vector<uint64_t> MakeSignatures(const std::vector<std::vector<uint32_t>>& sets,
                                     uint32_t num_hashes, uint64_t seed) {
  const MinHasher hasher(num_hashes, seed);
  std::vector<uint64_t> signatures(sets.size() * num_hashes);
  for (size_t i = 0; i < sets.size(); ++i) {
    hasher.ComputeSignature(sets[i], signatures.data() + i * num_hashes);
  }
  return signatures;
}

TEST(BandedIndexTest, ItemIsItsOwnCandidate) {
  const std::vector<std::vector<uint32_t>> sets{
      {1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const BandingParams params{4, 2};
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 1);
  const BandedIndex index(signatures, 3, params);
  for (uint32_t item = 0; item < 3; ++item) {
    bool saw_self = false;
    index.VisitCandidates(item, [&](uint32_t other) {
      if (other == item) saw_self = true;
    });
    EXPECT_TRUE(saw_self) << "item " << item;
  }
}

TEST(BandedIndexTest, IdenticalItemsAlwaysCollide) {
  const std::vector<std::vector<uint32_t>> sets{
      {1, 2, 3}, {1, 2, 3}, {50, 60, 70}};
  const BandingParams params{4, 4};
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 2);
  const BandedIndex index(signatures, 3, params);
  std::set<uint32_t> candidates;
  index.VisitCandidates(0, [&](uint32_t other) { candidates.insert(other); });
  EXPECT_TRUE(candidates.count(1));
}

TEST(BandedIndexTest, DisjointItemsRarelyCollide) {
  // 100 mutually disjoint sets with strict banding (r=8): expect (almost)
  // no cross-candidates.
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < 100; ++i) {
    sets.push_back({i * 10 + 1000, i * 10 + 1001, i * 10 + 1002,
                    i * 10 + 1003, i * 10 + 1004});
  }
  const BandingParams params{4, 8};
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 3);
  const BandedIndex index(signatures, 100, params);
  size_t cross = 0;
  for (uint32_t item = 0; item < 100; ++item) {
    index.VisitCandidates(item, [&](uint32_t other) {
      if (other != item) ++cross;
    });
  }
  EXPECT_LE(cross, 2u);
}

TEST(BandedIndexTest, QueryByExternalSignatureMatchesMemberQuery) {
  const std::vector<std::vector<uint32_t>> sets{
      {1, 2, 3, 4}, {1, 2, 3, 5}, {100, 200, 300, 400}};
  const BandingParams params{8, 2};
  const MinHasher hasher(params.num_hashes(), 11);
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 11);
  const BandedIndex index(signatures, 3, params);

  // Querying with item 0's own signature must reproduce its bucket mates.
  std::multiset<uint32_t> via_member, via_signature;
  index.VisitCandidates(0, [&](uint32_t other) { via_member.insert(other); });
  const auto sig = hasher.ComputeSignature(sets[0]);
  index.VisitCandidatesOfSignature(sig, [&](uint32_t other) {
    via_signature.insert(other);
  });
  EXPECT_EQ(via_member, via_signature);
}

TEST(BandedIndexTest, UnseenSignatureYieldsNoCandidates) {
  const std::vector<std::vector<uint32_t>> sets{{1, 2, 3}, {4, 5, 6}};
  const BandingParams params{4, 6};
  const MinHasher hasher(params.num_hashes(), 13);
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 13);
  const BandedIndex index(signatures, 2, params);
  const auto foreign =
      hasher.ComputeSignature(std::vector<uint32_t>{900, 901, 902});
  size_t count = 0;
  index.VisitCandidatesOfSignature(foreign, [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(BandedIndexTest, StatsAreConsistent) {
  std::vector<std::vector<uint32_t>> sets;
  Rng rng(17);
  for (uint32_t i = 0; i < 500; ++i) {
    std::vector<uint32_t> set;
    for (int t = 0; t < 8; ++t) {
      set.push_back(static_cast<uint32_t>(rng.Below(2000)));
    }
    sets.push_back(std::move(set));
  }
  const BandingParams params{6, 3};
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 19);
  const BandedIndex index(signatures, 500, params);

  const auto stats = index.ComputeStats();
  EXPECT_GT(stats.total_buckets, 0u);
  EXPECT_GE(stats.largest_bucket, 1u);
  EXPECT_LE(stats.largest_bucket, 500u);
  // Every band holds all 500 items, so mean = 500*6 / total_buckets.
  EXPECT_NEAR(stats.mean_bucket_size,
              3000.0 / static_cast<double>(stats.total_buckets), 1e-9);
  EXPECT_GT(index.MemoryUsageBytes(), 0u);

  // Per-band bucket sizes of each item are at least 1 (itself).
  for (uint32_t band = 0; band < params.bands; ++band) {
    EXPECT_GE(index.BucketSize(band, 0), 1u);
  }
}

TEST(BandedIndexTest, SingleItemIndex) {
  const std::vector<std::vector<uint32_t>> sets{{42, 43}};
  const BandingParams params{2, 2};
  const auto signatures = MakeSignatures(sets, params.num_hashes(), 23);
  const BandedIndex index(signatures, 1, params);
  size_t visits = 0;
  index.VisitCandidates(0, [&](uint32_t other) {
    EXPECT_EQ(other, 0u);
    ++visits;
  });
  EXPECT_EQ(visits, params.bands);  // itself, once per band
}

/// Property sweep: the empirical banding collision rate of real MinHash
/// signatures matches the analytic 1-(1-s^r)^b within Monte-Carlo noise.
class BandingCollisionTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, double>> {
};

TEST_P(BandingCollisionTest, EmpiricalRateMatchesAnalytic) {
  const auto [bands, rows, similarity] = GetParam();
  const BandingParams params{bands, rows};
  const uint32_t kTrials = 600;
  const uint32_t kSetSize = 64;

  uint32_t hits = 0;
  for (uint32_t trial = 0; trial < kTrials; ++trial) {
    // Pair with |A∩B| = i tokens out of union 2z-i.
    const uint32_t i = static_cast<uint32_t>(
        std::round(2.0 * kSetSize * similarity / (1.0 + similarity)));
    std::vector<uint32_t> a, b;
    uint32_t next = trial * 1000000;
    for (uint32_t t = 0; t < i; ++t) {
      a.push_back(next);
      b.push_back(next);
      ++next;
    }
    while (a.size() < kSetSize) a.push_back(next++);
    while (b.size() < kSetSize) b.push_back(next++);
    const MinHasher h2(params.num_hashes(), 5000 + trial);
    const auto sa = h2.ComputeSignature(a);
    const auto sb = h2.ComputeSignature(b);
    std::vector<uint64_t> combined;
    combined.insert(combined.end(), sa.begin(), sa.end());
    combined.insert(combined.end(), sb.begin(), sb.end());
    const BandedIndex index(combined, 2, params);
    bool collided = false;
    index.VisitCandidates(0, [&](uint32_t other) {
      if (other == 1) collided = true;
    });
    hits += collided ? 1 : 0;
  }

  const uint32_t i = static_cast<uint32_t>(
      std::round(2.0 * kSetSize * similarity / (1.0 + similarity)));
  const double realized = static_cast<double>(i) / (2.0 * kSetSize - i);
  const double expected = CandidatePairProbability(realized, params);
  const double observed = static_cast<double>(hits) / kTrials;
  const double sigma = std::sqrt(expected * (1 - expected) / kTrials);
  EXPECT_NEAR(observed, expected, 4 * sigma + 0.02)
      << "b=" << bands << " r=" << rows << " s=" << similarity;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandingCollisionTest,
    ::testing::Values(std::make_tuple(1u, 1u, 0.3),
                      std::make_tuple(10u, 1u, 0.1),
                      std::make_tuple(20u, 5u, 0.5),
                      std::make_tuple(20u, 5u, 0.7),
                      std::make_tuple(50u, 5u, 0.5),
                      std::make_tuple(20u, 2u, 0.3),
                      std::make_tuple(5u, 10u, 0.9)));

}  // namespace
}  // namespace lshclust
