// End-to-end tests of the `lshclust` command-line tool, driven in-process
// through RunCli (tools/cli.h).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/cli.h"

namespace lshclust {
namespace {

/// Runs the CLI with the given arguments (argv[0] is supplied).
int RunTool(std::vector<std::string> args) {
  std::vector<char*> argv;
  std::string program = "lshclust";
  argv.push_back(program.data());
  for (auto& arg : args) argv.push_back(arg.data());
  return RunCli(static_cast<int>(argv.size()), argv.data());
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() /
                 ("lshclust_cli_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::string Path(const std::string& name) const {
    return (directory_ / name).string();
  }
  std::filesystem::path directory_;
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  EXPECT_EQ(RunTool({}), 2);
  EXPECT_EQ(RunTool({"frobnicate"}), 2);
}

TEST_F(CliTest, GenerateClusterEvaluateRoundTrip) {
  const std::string dataset = Path("data.lshc");
  const std::string assignment = Path("assignment.csv");

  ASSERT_EQ(RunTool({"generate", "--items=600", "--attributes=20",
                 "--clusters=30", "--domain=500", "--seed=3",
                 "--output=" + dataset}),
            0);
  ASSERT_TRUE(std::filesystem::exists(dataset));

  ASSERT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=30",
                 "--method=mh-kmodes", "--bands=16", "--rows=2",
                 "--output=" + assignment}),
            0);
  ASSERT_TRUE(std::filesystem::exists(assignment));

  EXPECT_EQ(RunTool({"evaluate", "--dataset=" + dataset,
                 "--assignment=" + assignment}),
            0);
}

TEST_F(CliTest, ClusterWithExhaustiveKModes) {
  const std::string dataset = Path("data.lshc");
  const std::string assignment = Path("assignment.csv");
  ASSERT_EQ(RunTool({"generate", "--items=200", "--attributes=10",
                 "--clusters=8", "--domain=100", "--output=" + dataset}),
            0);
  EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=8",
                 "--method=kmodes", "--output=" + assignment}),
            0);
  // The assignment file has a header plus one line per item.
  std::ifstream in(assignment);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 201u);
}

TEST_F(CliTest, InspectReportsShapeAndAdvice) {
  const std::string dataset = Path("data.lshc");
  ASSERT_EQ(RunTool({"generate", "--items=300", "--attributes=50",
                 "--clusters=10", "--output=" + dataset}),
            0);
  EXPECT_EQ(RunTool({"inspect", "--input=" + dataset}), 0);
}

TEST_F(CliTest, ClusterRequiresInputAndK) {
  EXPECT_EQ(RunTool({"cluster"}), 2);
  EXPECT_EQ(RunTool({"cluster", "--k=5"}), 2);
}

TEST_F(CliTest, ClusterRejectsUnknownMethod) {
  const std::string dataset = Path("data.lshc");
  ASSERT_EQ(RunTool({"generate", "--items=100", "--attributes=8",
                 "--clusters=4", "--output=" + dataset}),
            0);
  EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=4",
                 "--method=quantum"}),
            2);
}

TEST_F(CliTest, MissingFilesFailGracefully) {
  EXPECT_EQ(RunTool({"cluster", "--input=" + Path("nope.lshc"), "--k=4"}), 1);
  EXPECT_EQ(RunTool({"evaluate", "--dataset=" + Path("nope.lshc"),
                 "--assignment=" + Path("nope.csv")}),
            1);
  EXPECT_EQ(RunTool({"inspect", "--input=" + Path("nope.lshc")}), 1);
}

TEST_F(CliTest, EvaluateRejectsMalformedAssignment) {
  const std::string dataset = Path("data.lshc");
  ASSERT_EQ(RunTool({"generate", "--items=100", "--attributes=8",
                 "--clusters=4", "--output=" + dataset}),
            0);
  const std::string bad = Path("bad.csv");
  std::ofstream(bad) << "item,cluster\n0,not-a-number\n";
  EXPECT_EQ(RunTool({"evaluate", "--dataset=" + dataset,
                 "--assignment=" + bad}),
            1);
}

TEST_F(CliTest, EvaluateRejectsLengthMismatch) {
  const std::string dataset = Path("data.lshc");
  ASSERT_EQ(RunTool({"generate", "--items=100", "--attributes=8",
                 "--clusters=4", "--output=" + dataset}),
            0);
  const std::string wrong = Path("short.csv");
  std::ofstream(wrong) << "item,cluster\n0,1\n1,2\n";
  EXPECT_EQ(RunTool({"evaluate", "--dataset=" + dataset,
                 "--assignment=" + wrong}),
            1);
}

TEST_F(CliTest, GenerateToCsvRequiresDictionary) {
  // The conjunctive generator produces raw codes without a dictionary, so
  // CSV output must be rejected with a clear error.
  EXPECT_EQ(RunTool({"generate", "--items=50", "--attributes=5",
                 "--clusters=2", "--output=" + Path("data.csv")}),
            1);
}

TEST_F(CliTest, ClusterRunsKMeansOnNumericCsv) {
  const std::string dataset = Path("points.csv");
  std::ofstream(dataset) << "x,y,label\n"
                            "1.0,1.1,0\n1.2,0.9,0\n0.9,1.0,0\n"
                            "10.0,10.2,1\n10.1,9.9,1\n9.8,10.0,1\n";
  const std::string assignment = Path("assignment.csv");
  for (const char* accel : {"exhaustive", "lsh"}) {
    EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=2",
                   "--algo=kmeans", std::string("--accel=") + accel,
                   "--output=" + assignment}),
              0)
        << accel;
    std::ifstream in(assignment);
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 7u);
  }
}

TEST_F(CliTest, ClusterRunsKPrototypesOnMixedCsv) {
  const std::string dataset = Path("records.csv");
  // Whitespace-padded cells must not flip a numeric column categorical
  // (fields are trimmed exactly like the categorical CSV reader's).
  std::ofstream(dataset) << "plan,mrr,region,usage,label\n"
                            "pro, 10.5 ,eu,100.2,0\npro,11.0,eu,98.0,0\n"
                            "pro,10.0,eu,101.5,0\nfree,0.0,us,5.1,1\n"
                            "free,0.5,us,4.8,1\nfree,0.0,us,5.5,1\n";
  const std::string assignment = Path("assignment.csv");
  EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=2",
                 "--algo=kprototypes", "--gamma=0.1",
                 "--output=" + assignment}),
            0);
  EXPECT_TRUE(std::filesystem::exists(assignment));
}

TEST_F(CliTest, ClusterRunsCanopyAccelerator) {
  const std::string dataset = Path("data.lshc");
  const std::string assignment = Path("assignment.csv");
  ASSERT_EQ(RunTool({"generate", "--items=200", "--attributes=10",
                 "--clusters=8", "--domain=100", "--output=" + dataset}),
            0);
  EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=8",
                 "--algo=kmodes", "--accel=canopy",
                 "--output=" + assignment}),
            0);
  // --accel must also be honoured without --algo (the legacy --method
  // shorthand only fills the gap, never overrides an explicit choice).
  EXPECT_EQ(RunTool({"cluster", "--input=" + dataset, "--k=8",
                 "--accel=canopy", "--output=" + assignment}),
            0);
}

TEST_F(CliTest, ClusterUsageErrorsExitWithCode2) {
  const std::string numeric = Path("points.csv");
  std::ofstream(numeric) << "x,y\n1.0,1.1\n2.0,2.1\n";
  // Invalid spec combination: canopy on numeric data.
  EXPECT_EQ(RunTool({"cluster", "--input=" + numeric, "--k=2",
                 "--algo=kmeans", "--accel=canopy"}),
            2);
  // Unknown algo / accel names.
  EXPECT_EQ(RunTool({"cluster", "--input=" + numeric, "--k=2",
                 "--algo=qmeans"}),
            2);
  EXPECT_EQ(RunTool({"cluster", "--input=" + numeric, "--k=2",
                 "--algo=kmeans", "--accel=warp"}),
            2);
  // kmeans on a categorical-valued CSV is a data error (exit 1).
  const std::string categorical = Path("cats.csv");
  std::ofstream(categorical) << "colour,size\nblue,small\nred,large\n";
  EXPECT_EQ(RunTool({"cluster", "--input=" + categorical, "--k=2",
                 "--algo=kmeans"}),
            1);
}

}  // namespace
}  // namespace lshclust
