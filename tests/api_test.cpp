// Tests of the lshclust::Clusterer front door (api/clusterer.h):
//
//  * Golden parity: for every (modality x accelerator) cell the facade's
//    Fit must be bit-identical — assignments, per-iteration moves /
//    shortlist stats / costs, and centroids (checked through Predict) —
//    to driving the corresponding ClusteringEngine instantiation
//    directly, at threads {1,4} x shards {1,3}.
//  * Validation: every invalid ClustererSpec combination returns the
//    right StatusCode with an actionable message instead of aborting.
//  * Hooks: the progress callback fires once per refinement iteration
//    with the recorded stats; the cancellation hook stops a run between
//    iterations (and at shard-chunk boundaries) and surfaces
//    StatusCode::kCancelled with the partial FitReport.
//  * Streaming: MakeStreamingSession reproduces StreamingMHKModes
//    bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "api/clusterer.h"
#include "clustering/kmodes.h"
#include "clustering/kprototypes.h"
#include "core/canopy_kmodes.h"
#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/mh_kmodes.h"
#include "core/streaming.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/tfidf.h"

namespace lshclust {
namespace {

CategoricalDataset CategoricalFixture() {
  ConjunctiveDataOptions options;
  options.num_items = 300;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

NumericDataset NumericFixture() {
  GaussianMixtureOptions options;
  options.num_items = 240;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  return GenerateGaussianMixture(options).ValueOrDie();
}

MixedDataset MixedFixture() {
  MixedDataOptions options;
  options.categorical.num_items = 200;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  return GenerateMixedData(options).ValueOrDie();
}

/// Binary word-presence items from the synthetic Yahoo!-like corpus —
/// the kTextBinarized modality's real input shape.
CategoricalDataset TextFixture() {
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 10;
  corpus_options.questions_per_topic = 12;
  corpus_options.seed = 7;
  const TokenizedCorpus corpus = GenerateYahooLikeCorpus(corpus_options);
  auto model = TopicTfIdf::Compute(corpus);
  TfIdfOptions tfidf;
  tfidf.threshold = 0.3;
  return BinarizeCorpus(corpus, model->SelectVocabulary(tfidf)).ValueOrDie();
}

void ExpectIdenticalRuns(const ClusteringResult& a,
                         const ClusteringResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].moves, b.iterations[i].moves) << "iter " << i;
    EXPECT_EQ(a.iterations[i].mean_shortlist, b.iterations[i].mean_shortlist)
        << "iter " << i;
    EXPECT_EQ(a.iterations[i].cost, b.iterations[i].cost) << "iter " << i;
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
}

EngineOptions BaseEngine(uint32_t k, uint32_t threads, uint32_t shards) {
  EngineOptions engine;
  engine.num_clusters = k;
  engine.max_iterations = 6;
  engine.seed = 5;
  engine.num_threads = threads;
  engine.num_shards = shards;
  engine.chunk_size = 64;
  return engine;
}

/// Runs one facade cell and its direct-engine twin, proving bit-identity
/// of the run and (through Predict on the training items) of the
/// centroids. `direct` is invoked as direct(options, &centroids_out).
template <typename Traits, typename DirectFn>
void ExpectFacadeParity(const ClustererSpec& spec,
                        const typename Traits::Dataset& dataset,
                        const typename Traits::Options& direct_options,
                        const DirectFn& direct) {
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok()) << clusterer.status().ToString();
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok());

  typename Traits::Centroids centroids = Traits::MakeCentroids(
      dataset, direct_options);
  auto reference = direct(direct_options, &centroids);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectIdenticalRuns(report->result, *reference);

  // Centroid parity, observed through the facade's Predict: each training
  // item's nearest fitted centroid must match a manual scan against the
  // direct run's centroids.
  auto predicted = clusterer->Predict(dataset);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  const uint32_t k = direct_options.num_clusters;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    uint32_t best_cluster = 0;
    auto best = Traits::template ComputeDistance<false>(
        dataset, centroids, direct_options, item, 0,
        Traits::kInfiniteDistance);
    for (uint32_t cluster = 1; cluster < k; ++cluster) {
      const auto distance = Traits::template ComputeDistance<false>(
          dataset, centroids, direct_options, item, cluster,
          Traits::kInfiniteDistance);
      if (distance < best) {
        best = distance;
        best_cluster = cluster;
      }
    }
    ASSERT_EQ((*predicted)[item], best_cluster) << "item " << item;
  }
}

struct ParityGrid {
  uint32_t threads;
  uint32_t shards;
};
const ParityGrid kGrid[] = {{1, 1}, {1, 3}, {4, 1}, {4, 3}};

// ------------------------------------------------------------- parity ----

TEST(FacadeParityTest, CategoricalCells) {
  const CategoricalDataset dataset = CategoricalFixture();
  for (const Modality modality :
       {Modality::kCategorical, Modality::kTextBinarized}) {
    for (const auto& grid : kGrid) {
      ClustererSpec spec;
      spec.modality = modality;
      spec.engine = BaseEngine(8, grid.threads, grid.shards);

      spec.accelerator = Accelerator::kExhaustive;
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            ExhaustiveProvider provider;
            return RunEngine(dataset, options, provider, centroids);
          });

      spec.accelerator = Accelerator::kMinHash;
      spec.minhash.banding = {8, 2};
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            ClusterShortlistProvider provider(spec.minhash,
                                              options.num_clusters);
            return RunEngine(dataset, options, provider, centroids);
          });

      spec.accelerator = Accelerator::kCanopy;
      spec.canopy.cheap_attributes = 4;
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            CanopyShortlistProvider provider(spec.canopy,
                                             options.num_clusters);
            return RunEngine(dataset, options, provider, centroids);
          });
    }
  }
}

TEST(FacadeParityTest, TextBinarizedOnRealBinarizedCorpus) {
  // The categorical grid above already proves kTextBinarized dispatch;
  // this runs the modality on its actual input shape (sparse binarized
  // text with absence semantics).
  const CategoricalDataset dataset = TextFixture();
  ClustererSpec spec;
  spec.modality = Modality::kTextBinarized;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(10, 4, 3);
  spec.minhash.banding = {10, 1};
  ExpectFacadeParity<CategoricalClusteringTraits>(
      spec, dataset, spec.engine,
      [&](const EngineOptions& options, ModeTable* centroids) {
        ClusterShortlistProvider provider(spec.minhash, options.num_clusters);
        return RunEngine(dataset, options, provider, centroids);
      });
}

TEST(FacadeParityTest, NumericCells) {
  const NumericDataset dataset = NumericFixture();
  for (const auto& grid : kGrid) {
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.engine = BaseEngine(6, grid.threads, grid.shards);
    KMeansOptions options;
    static_cast<EngineOptions&>(options) = spec.engine;

    spec.accelerator = Accelerator::kExhaustive;
    ExpectFacadeParity<NumericClusteringTraits>(
        spec, dataset, options,
        [&](const KMeansOptions& direct, CentroidTable* centroids) {
          ExhaustiveProvider provider;
          return RunKMeansEngine(dataset, direct, provider, centroids);
        });

    spec.accelerator = Accelerator::kSimHash;
    spec.simhash.banding = {6, 3};
    ExpectFacadeParity<NumericClusteringTraits>(
        spec, dataset, options,
        [&](const KMeansOptions& direct, CentroidTable* centroids) {
          SimHashShortlistProvider provider(spec.simhash,
                                            direct.num_clusters);
          return RunKMeansEngine(dataset, direct, provider, centroids);
        });
  }
}

TEST(FacadeParityTest, MixedCells) {
  const MixedDataset dataset = MixedFixture();
  for (const auto& grid : kGrid) {
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.engine = BaseEngine(5, grid.threads, grid.shards);
    spec.gamma = 0.5;
    KPrototypesOptions options;
    static_cast<EngineOptions&>(options) = spec.engine;
    options.gamma = spec.gamma;

    spec.accelerator = Accelerator::kExhaustive;
    ExpectFacadeParity<MixedClusteringTraits>(
        spec, dataset, options,
        [&](const KPrototypesOptions& direct,
            MixedClusteringTraits::Centroids* centroids) {
          ExhaustiveProvider provider;
          return RunKPrototypesEngine(dataset, direct, provider, centroids);
        });

    spec.accelerator = Accelerator::kMixedConcat;
    spec.mixed_index.categorical_banding = {8, 2};
    spec.mixed_index.numeric_banding = {4, 8};
    ExpectFacadeParity<MixedClusteringTraits>(
        spec, dataset, options,
        [&](const KPrototypesOptions& direct,
            MixedClusteringTraits::Centroids* centroids) {
          MixedShortlistProvider provider(spec.mixed_index,
                                          direct.num_clusters);
          return RunKPrototypesEngine(dataset, direct, provider, centroids);
        });
  }
}

TEST(FacadeParityTest, LegacyEntryPointsMatchFacade) {
  // The deprecated shims route through the facade; their results must
  // still match a facade call spelled directly.
  const CategoricalDataset dataset = CategoricalFixture();
  MHKModesOptions legacy;
  legacy.engine = BaseEngine(8, 1, 1);
  legacy.index.banding = {8, 2};
  auto shim = RunMHKModes(dataset, legacy);
  ASSERT_TRUE(shim.ok());

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = legacy.engine;
  spec.minhash = legacy.index;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  ExpectIdenticalRuns(shim->result, report->result);
  EXPECT_TRUE(report->has_index);
  EXPECT_EQ(shim->index_memory_bytes, report->index_memory_bytes);
}

// --------------------------------------------------------- validation ----

Status CreateStatus(const ClustererSpec& spec) {
  return Clusterer::Create(spec).status();
}

TEST(FacadeValidationTest, RejectsIncompatibleAcceleratorModalityPairs) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;

  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kCanopy;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("canopy"), std::string::npos);
  EXPECT_NE(status.message().find("simhash"), std::string::npos)
      << "message should name the supported accelerators: "
      << status.message();

  spec.accelerator = Accelerator::kMinHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kMixedConcat;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kSimHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kMixedConcat;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMinHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kCanopy;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kTextBinarized;
  spec.accelerator = Accelerator::kSimHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectsBadEngineOptions) {
  ClustererSpec spec;

  spec.engine.num_clusters = 0;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_clusters"), std::string::npos);

  spec.engine.num_clusters = 4;
  spec.engine.num_shards = 0;
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_shards"), std::string::npos);

  spec.engine.num_shards = 1;
  spec.engine.chunk_size = 0;
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("chunk_size"), std::string::npos);

  spec.engine.chunk_size = 1024;
  spec.engine.initial_seeds = {1, 2};  // wrong arity for k=4
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("initial_seeds"), std::string::npos);
}

TEST(FacadeValidationTest, RejectsCategoricalOnlySeedingOffModality) {
  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  spec.engine.init_method = InitMethod::kHuang;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("kRandom"), std::string::npos);

  spec.modality = Modality::kMixed;
  spec.engine.init_method = InitMethod::kCao;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  // Huang is fine on categorical data.
  spec.modality = Modality::kCategorical;
  spec.engine.init_method = InitMethod::kHuang;
  EXPECT_TRUE(CreateStatus(spec).ok());
}

TEST(FacadeValidationTest, RejectsBadAcceleratorOptions) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;

  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.minhash.banding = {0, 5};
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("spec.minhash"), std::string::npos);

  spec.minhash.banding = {20, 5};
  spec.accelerator = Accelerator::kCanopy;
  spec.canopy.tight_fraction = 0.9;
  spec.canopy.loose_fraction = 0.5;  // tight > loose
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("spec.canopy"), std::string::npos);

  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kSimHash;
  spec.simhash.banding = {16, 0};
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMixedConcat;
  spec.mixed_index.numeric_banding = {0, 16};
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectsNegativeGammaOnMixed) {
  ClustererSpec spec;
  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  spec.gamma = -0.25;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("gamma"), std::string::npos);

  // NaN / inf would silently poison every mixed distance; both must be
  // rejected up front.
  spec.gamma = std::nan("");
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.gamma = std::numeric_limits<double>::infinity();
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectedFitPreservesPreviousModel) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine.num_clusters = 8;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  auto before = clusterer->Predict(dataset);
  ASSERT_TRUE(before.ok());

  // k > n: the engine rejects the run; the fitted model must survive.
  auto tiny = CategoricalDataset::FromCodes(2, 12, 40,
                                            std::vector<uint32_t>(24, 0));
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(clusterer->Fit(*tiny).ok());
  EXPECT_TRUE(clusterer->fitted());
  auto after = clusterer->Predict(dataset);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(FacadeValidationTest, RejectsUnrecognizedEnumValues) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;
  spec.modality = static_cast<Modality>(250);
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, FitRejectsMismatchedDatasetShape) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(NumericFixture());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("categorical"),
            std::string::npos);
}

TEST(FacadeValidationTest, PredictRequiresFitAndMatchingShape) {
  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  EXPECT_FALSE(clusterer->fitted());
  EXPECT_EQ(clusterer->Predict(NumericFixture()).status().code(),
            StatusCode::kInvalidArgument);

  const NumericDataset dataset = NumericFixture();
  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  EXPECT_TRUE(clusterer->fitted());

  // Wrong dimensionality is rejected.
  auto skinny = NumericDataset::FromValues(2, 2, {0.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(skinny.ok());
  EXPECT_EQ(clusterer->Predict(*skinny).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, StreamingRequiresMinHashSpec) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  Status status =
      clusterer->MakeStreamingSession(dataset).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("minhash"), std::string::npos);

  spec.accelerator = Accelerator::kMinHash;
  auto lsh_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(lsh_clusterer.ok());
  StreamingSessionOptions bad;
  bad.ingest_shards = 0;
  EXPECT_EQ(lsh_clusterer->MakeStreamingSession(dataset, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- hooks ----

TEST(FacadeHooksTest, ProgressFiresOncePerIterationWithRecordedStats) {
  const CategoricalDataset dataset = CategoricalFixture();
  std::vector<IterationStats> seen;
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.progress = [&](const IterationStats& stats) {
    seen.push_back(stats);
  };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(seen.size(), report->result.iterations.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].iteration, report->result.iterations[i].iteration);
    EXPECT_EQ(seen[i].moves, report->result.iterations[i].moves);
    EXPECT_EQ(seen[i].cost, report->result.iterations[i].cost);
  }
}

TEST(FacadeHooksTest, CancelBetweenIterationsReturnsPartialReport) {
  const CategoricalDataset dataset = CategoricalFixture();

  // Reference: the honest two-iteration prefix.
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.max_iterations = 2;
  auto prefix_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(prefix_clusterer.ok());
  auto prefix = prefix_clusterer->Fit(dataset);
  ASSERT_TRUE(prefix.ok());
  ASSERT_EQ(prefix->result.iterations.size(), 2u);

  // Cancelled run: stop as soon as two iterations completed.
  int completed = 0;
  spec.engine.max_iterations = 100;
  spec.engine.progress = [&](const IterationStats&) { ++completed; };
  spec.engine.cancel = [&] { return completed >= 2; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_FALSE(report->result.converged);
  ASSERT_EQ(report->result.iterations.size(), 2u);
  // The partial report is exactly the two-iteration prefix — an
  // interrupted pass never leaks into it.
  ExpectIdenticalRuns(report->result, prefix->result);
  // A cancelled fit still yields a usable model.
  EXPECT_TRUE(clusterer->fitted());
  EXPECT_TRUE(clusterer->Predict(dataset).ok());
}

TEST(FacadeHooksTest, CancelDuringInitialPassReturnsEmptyIterations) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine = BaseEngine(8, 1, 1);
  spec.engine.cancel = [] { return true; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_TRUE(report->result.iterations.empty());
  // The initial pass never completed, so there is no consistent state to
  // report — a half-applied assignment must not leak out.
  EXPECT_TRUE(report->result.assignment.empty());
}

TEST(FacadeHooksTest, CancelMidPassRollsBackToLastCompletedIteration) {
  const CategoricalDataset dataset = CategoricalFixture();

  // Reference: stop exactly after the initial assignment (no refinement).
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine = BaseEngine(8, 1, 1);
  spec.engine.max_iterations = 0;
  auto base_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(base_clusterer.ok());
  auto base = base_clusterer->Fit(dataset);
  ASSERT_TRUE(base.ok());

  // Cancel mid-way through refinement iteration 1's pass. With threads=1
  // the poll sequence is deterministic: one poll per chunk of the initial
  // pass (ceil(n / chunk_size)), one after the pass, one after Prepare,
  // one at the top of iteration 1, then one per chunk of its pass.
  // Triggering two chunks into that pass means two chunks' assignments
  // were already overwritten when the cancel lands — exactly what the
  // roll-back must undo. (If the poll schedule ever shifts earlier the
  // test still holds: cancelling sooner also leaves the
  // initial-assignment state.)
  spec.engine.max_iterations = 100;
  const int chunk_polls = static_cast<int>(
      (dataset.num_items() + spec.engine.chunk_size - 1) /
      spec.engine.chunk_size);
  const int polls_before_refinement_pass = chunk_polls + 3;
  int total_polls = 0;
  spec.engine.cancel = [&, polls_before_refinement_pass] {
    ++total_polls;
    return total_polls > polls_before_refinement_pass + 2;
  };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_TRUE(report->result.iterations.empty());
  // The interrupted first refinement pass was rolled back: the assignment
  // is bit-identical to the max_iterations=0 run.
  EXPECT_EQ(report->result.assignment, base->result.assignment);
}

TEST(FacadeHooksTest, LegacyShimsSurfaceCancellationAsError) {
  // The legacy entry points have no channel for a partial report; a
  // cancelled run must come back as the kCancelled error, never as an
  // ok() result with a partial (possibly empty) assignment.
  const CategoricalDataset dataset = CategoricalFixture();
  MHKModesOptions options;
  options.engine = BaseEngine(8, 1, 1);
  options.engine.cancel = [] { return true; };
  options.index.banding = {8, 2};
  auto run = RunMHKModes(dataset, options);
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(FacadeHooksTest, CancelledBootstrapFailsStreamingSessionCreation) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.cancel = [] { return true; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  // A session must never be built on a partial warm-up clustering.
  Status status = clusterer->MakeStreamingSession(dataset).status();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------- streaming ----

TEST(FacadeStreamingTest, SessionMatchesDirectStreamingEngine) {
  ConjunctiveDataOptions data;
  data.num_items = 400;
  data.num_attributes = 16;
  data.num_clusters = 10;
  data.domain_size = 60;
  data.seed = 23;
  const auto all = GenerateConjunctiveRuleData(data).ValueOrDie();
  const uint32_t warmup_items = 300;
  const uint32_t m = all.num_attributes();
  auto warmup = CategoricalDataset::FromCodes(
      warmup_items, m, all.num_codes(),
      {all.codes().begin(), all.codes().begin() + warmup_items * m});
  ASSERT_TRUE(warmup.ok());

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(10, 1, 1);
  spec.minhash.banding = {10, 2};

  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  StreamingSessionOptions session_options;
  session_options.ingest_threads = 2;
  auto session = clusterer->MakeStreamingSession(*warmup, session_options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  StreamingMHKModesOptions direct_options;
  direct_options.bootstrap.engine = spec.engine;
  direct_options.bootstrap.index = spec.minhash;
  direct_options.ingest_threads = 2;
  auto direct = StreamingMHKModes::Bootstrap(*warmup, direct_options);
  ASSERT_TRUE(direct.ok());

  const std::span<const uint32_t> rows(
      all.codes().data() + static_cast<size_t>(warmup_items) * m,
      static_cast<size_t>(all.num_items() - warmup_items) * m);
  ASSERT_TRUE(session->IngestBatch(rows).ok());
  ASSERT_TRUE(direct->IngestBatch(rows).ok());

  EXPECT_EQ(session->assignment(), direct->assignment());
  EXPECT_EQ(session->stats().ingested, direct->stats().ingested);
  EXPECT_EQ(session->stats().shortlist_total,
            direct->stats().shortlist_total);
  EXPECT_EQ(session->num_clusters(), 10u);
  EXPECT_EQ(session->num_attributes(), m);
}

// ------------------------------------------------------------- report ----

TEST(FacadeReportTest, IndexDiagnosticsOnlyForIndexAccelerators) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine = BaseEngine(8, 1, 1);

  spec.accelerator = Accelerator::kExhaustive;
  auto exhaustive = Clusterer::Create(spec);
  ASSERT_TRUE(exhaustive.ok());
  auto plain = exhaustive->Fit(dataset);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_index);

  spec.accelerator = Accelerator::kMinHash;
  spec.minhash.banding = {8, 2};
  auto accelerated = Clusterer::Create(spec);
  ASSERT_TRUE(accelerated.ok());
  auto indexed = accelerated->Fit(dataset);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->has_index);
  EXPECT_GT(indexed->index_memory_bytes, 0u);
  EXPECT_GT(indexed->index_stats.total_buckets, 0u);
}

// ------------------------------------------------------ routed predict ----
//
// PredictRouted must (a) agree bit-for-bit with a reference probe built
// the way catalog_dedup historically routed — a standalone provider with
// the same options signs the arrival, probes the buckets, dereferences
// candidate clusters through the fitted assignment, and takes the
// nearest candidate with lowest-id ties — except that PredictRouted does
// it against the *retained* fit-time index with zero re-signing of the
// fitted dataset; (b) equal exhaustive Predict wherever the probe
// contains Predict's winner (or is empty: fallback); and (c) be
// bit-identical at every (threads x shards) grid point.

/// Slices `count` items starting at `begin` out of a generated
/// categorical dataset (labels dropped; arrivals have none).
CategoricalDataset SliceCategorical(const CategoricalDataset& all,
                                    uint32_t begin, uint32_t count) {
  const uint32_t m = all.num_attributes();
  std::vector<uint32_t> codes(
      all.codes().begin() + static_cast<size_t>(begin) * m,
      all.codes().begin() + static_cast<size_t>(begin + count) * m);
  return CategoricalDataset::FromCodes(count, m, all.num_codes(),
                                       std::move(codes))
      .ValueOrDie();
}

NumericDataset SliceNumeric(const NumericDataset& all, uint32_t begin,
                            uint32_t count) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(count) * all.dimensions());
  for (uint32_t item = begin; item < begin + count; ++item) {
    const auto row = all.Row(item);
    values.insert(values.end(), row.begin(), row.end());
  }
  return NumericDataset::FromValues(count, all.dimensions(),
                                    std::move(values))
      .ValueOrDie();
}

/// Reference nearest-of-candidates with exact distances and ascending
/// (lowest-id-ties) order — the documented PredictRouted decision rule.
template <typename Traits>
uint32_t NearestOfCandidates(const typename Traits::Dataset& arrivals,
                             const typename Traits::Centroids& centroids,
                             const typename Traits::Options& options,
                             uint32_t item,
                             std::vector<uint32_t> candidates) {
  std::sort(candidates.begin(), candidates.end());
  uint32_t best_cluster = candidates.front();
  auto best = Traits::template ComputeDistance<false>(
      arrivals, centroids, options, item, best_cluster,
      Traits::kInfiniteDistance);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const auto distance = Traits::template ComputeDistance<false>(
        arrivals, centroids, options, item, candidates[i],
        Traits::kInfiniteDistance);
    if (distance < best) {
      best = distance;
      best_cluster = candidates[i];
    }
  }
  return best_cluster;
}

/// Proves the routed contract for one banding cell. `direct` runs the
/// engine twin (options, &centroids) -> Result<ClusteringResult>;
/// `probe` returns arrival `item`'s deduplicated candidate clusters from
/// a standalone re-signed provider (the legacy routing pattern the
/// retained index replaces).
template <typename Traits, typename DirectFn, typename ProbeFn>
void ExpectRoutedParity(const ClustererSpec& base_spec,
                        const typename Traits::Dataset& fit_data,
                        const typename Traits::Dataset& arrivals,
                        const typename Traits::Options& direct_options,
                        const DirectFn& direct, const ProbeFn& probe) {
  typename Traits::Centroids centroids =
      Traits::MakeCentroids(fit_data, direct_options);
  auto reference_run = direct(direct_options, &centroids);
  ASSERT_TRUE(reference_run.ok()) << reference_run.status().ToString();

  auto clusterer = Clusterer::Create(base_spec);
  ASSERT_TRUE(clusterer.ok()) << clusterer.status().ToString();
  auto report = clusterer->Fit(fit_data);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.assignment, reference_run->assignment);
  ASSERT_TRUE(report->index_retained);

  auto handle = clusterer->index();
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->dataset_sign_passes(), 1u);
  EXPECT_EQ(handle->num_indexed_items(), fit_data.num_items());

  auto routed = clusterer->PredictRouted(arrivals);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  auto predicted = clusterer->Predict(arrivals);
  ASSERT_TRUE(predicted.ok());

  // Routing signed only the queries: the fitted dataset's signing counter
  // is untouched by any number of routed calls.
  auto routed_again = clusterer->PredictRouted(arrivals);
  ASSERT_TRUE(routed_again.ok());
  EXPECT_EQ(*routed, *routed_again);
  EXPECT_EQ(clusterer->index()->dataset_sign_passes(), 1u);

  uint32_t fallbacks = 0;
  for (uint32_t item = 0; item < arrivals.num_items(); ++item) {
    const std::vector<uint32_t> candidates =
        probe(item, reference_run->assignment);
    if (candidates.empty()) {
      // Empty probe: the exhaustive fallback must equal Predict.
      EXPECT_EQ((*routed)[item], (*predicted)[item]) << "item " << item;
      ++fallbacks;
      continue;
    }
    const uint32_t expected = NearestOfCandidates<Traits>(
        arrivals, centroids, direct_options, item, candidates);
    EXPECT_EQ((*routed)[item], expected) << "item " << item;
    // Shortlist hit: whenever the probe contains Predict's winner the
    // routed assignment is bit-identical to Predict's.
    if (std::find(candidates.begin(), candidates.end(),
                  (*predicted)[item]) != candidates.end()) {
      EXPECT_EQ((*routed)[item], (*predicted)[item]) << "item " << item;
    }
  }

  // Bit-identity across the (threads x shards) grid: the decomposition
  // and worker count are invisible in routed results.
  for (const auto& grid : kGrid) {
    ClustererSpec spec = base_spec;
    spec.engine.num_threads = grid.threads;
    spec.engine.num_shards = grid.shards;
    auto grid_clusterer = Clusterer::Create(spec);
    ASSERT_TRUE(grid_clusterer.ok());
    ASSERT_TRUE(grid_clusterer->Fit(fit_data).ok());
    auto grid_routed = grid_clusterer->PredictRouted(arrivals);
    ASSERT_TRUE(grid_routed.ok());
    EXPECT_EQ(*grid_routed, *routed)
        << "threads=" << grid.threads << " shards=" << grid.shards;
  }
}

TEST(RoutedPredictTest, CategoricalMinHashMatchesStandaloneProbe) {
  ConjunctiveDataOptions options;
  options.num_items = 360;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  const auto all = GenerateConjunctiveRuleData(options).ValueOrDie();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);

  for (const Modality modality :
       {Modality::kCategorical, Modality::kTextBinarized}) {
    ClustererSpec spec;
    spec.modality = modality;
    spec.accelerator = Accelerator::kMinHash;
    spec.engine = BaseEngine(8, 1, 1);
    spec.minhash.banding = {8, 2};

    // The legacy routing pattern: a standalone provider re-signs and
    // re-indexes the fitted dataset (what catalog_dedup used to do).
    ClusterShortlistProvider standalone(spec.minhash,
                                        spec.engine.num_clusters);
    ASSERT_TRUE(standalone.Prepare(fit_data).ok());
    std::vector<uint32_t> tokens, candidates;
    ExpectRoutedParity<CategoricalClusteringTraits>(
        spec, fit_data, arrivals, spec.engine,
        [&](const EngineOptions& direct, ModeTable* centroids) {
          ClusterShortlistProvider provider(spec.minhash,
                                            direct.num_clusters);
          return RunEngine(fit_data, direct, provider, centroids);
        },
        [&](uint32_t item, std::span<const uint32_t> fit_assignment) {
          arrivals.PresentTokens(item, &tokens);
          standalone.GetCandidatesForTokens(tokens, fit_assignment,
                                            &candidates);
          return candidates;
        });
  }
}

TEST(RoutedPredictTest, NumericSimHashMatchesStandaloneProbe) {
  GaussianMixtureOptions options;
  options.num_items = 300;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  const auto all = GenerateGaussianMixture(options).ValueOrDie();
  const auto fit_data = SliceNumeric(all, 0, 240);
  const auto arrivals = SliceNumeric(all, 240, 60);

  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kSimHash;
  spec.engine = BaseEngine(6, 1, 1);
  spec.simhash.banding = {6, 3};
  KMeansOptions direct_options;
  static_cast<EngineOptions&>(direct_options) = spec.engine;

  SimHashShortlistProvider standalone(spec.simhash,
                                      spec.engine.num_clusters);
  ASSERT_TRUE(standalone.Prepare(fit_data).ok());
  std::vector<uint32_t> candidates;
  ExpectRoutedParity<NumericClusteringTraits>(
      spec, fit_data, arrivals, direct_options,
      [&](const KMeansOptions& direct, CentroidTable* centroids) {
        SimHashShortlistProvider provider(spec.simhash,
                                          direct.num_clusters);
        return RunKMeansEngine(fit_data, direct, provider, centroids);
      },
      [&](uint32_t item, std::span<const uint32_t> fit_assignment) {
        standalone.GetCandidatesForQuery(arrivals.Row(item), fit_assignment,
                                         &candidates);
        return candidates;
      });
}

TEST(RoutedPredictTest, MixedConcatMatchesStandaloneProbe) {
  MixedDataOptions options;
  options.categorical.num_items = 260;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  const auto all = GenerateMixedData(options).ValueOrDie();
  const auto fit_data =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 0, 200),
                            SliceNumeric(all.numeric(), 0, 200))
          .ValueOrDie();
  const auto arrivals =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 200, 60),
                            SliceNumeric(all.numeric(), 200, 60))
          .ValueOrDie();

  ClustererSpec spec;
  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMixedConcat;
  spec.engine = BaseEngine(5, 1, 1);
  spec.gamma = 0.5;
  spec.mixed_index.categorical_banding = {8, 2};
  spec.mixed_index.numeric_banding = {4, 8};
  KPrototypesOptions direct_options;
  static_cast<EngineOptions&>(direct_options) = spec.engine;
  direct_options.gamma = spec.gamma;

  // The mixed family's query representation is two spans, so the probe
  // signs by hand and walks the index directly (same bucket space: same
  // options + seed + items as the retained index).
  MixedShortlistProvider standalone(spec.mixed_index,
                                    spec.engine.num_clusters);
  ASSERT_TRUE(standalone.Prepare(fit_data).ok());
  std::vector<uint32_t> tokens;
  std::vector<double> centered;
  std::vector<uint64_t> signature(standalone.family().signature_width());
  ExpectRoutedParity<MixedClusteringTraits>(
      spec, fit_data, arrivals, direct_options,
      [&](const KPrototypesOptions& direct,
          MixedClusteringTraits::Centroids* centroids) {
        MixedShortlistProvider provider(spec.mixed_index,
                                        direct.num_clusters);
        return RunKPrototypesEngine(fit_data, direct, provider, centroids);
      },
      [&](uint32_t item, std::span<const uint32_t> fit_assignment) {
        arrivals.categorical().PresentTokens(item, &tokens);
        standalone.family().ComputeQuerySignature(
            tokens, arrivals.numeric().Row(item), &centered,
            signature.data());
        std::set<uint32_t> clusters;
        standalone.index()->VisitCandidatesOfSignature(
            signature, [&](uint32_t other) {
              clusters.insert(fit_assignment[other]);
            });
        return std::vector<uint32_t>(clusters.begin(), clusters.end());
      });
}

TEST(RoutedPredictTest, DegeneratesToPredictWithoutARetainedIndex) {
  const CategoricalDataset dataset = CategoricalFixture();
  // Exhaustive and canopy accelerators build no banding index; routed
  // prediction must be exactly Predict, and index() must say why.
  for (const Accelerator accelerator :
       {Accelerator::kExhaustive, Accelerator::kCanopy}) {
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = accelerator;
    spec.engine = BaseEngine(8, 1, 1);
    spec.canopy.cheap_attributes = 4;
    auto clusterer = Clusterer::Create(spec);
    ASSERT_TRUE(clusterer.ok());
    auto report = clusterer->Fit(dataset);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->index_retained);
    auto routed = clusterer->PredictRouted(dataset);
    auto predicted = clusterer->Predict(dataset);
    ASSERT_TRUE(routed.ok());
    ASSERT_TRUE(predicted.ok());
    EXPECT_EQ(*routed, *predicted);
    EXPECT_EQ(clusterer->index().status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(RoutedPredictTest, RetentionDisabledReportsNoIndexStateAndFallsBack) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.retain_index = false;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  // The index existed during the run (the run was accelerated, and its
  // timing split is honest)...
  EXPECT_TRUE(report->has_index);
  // ...but it is gone now, so the report must not describe it: no stats,
  // no memory, no retained flag — diagnostics never reference freed
  // state.
  EXPECT_FALSE(report->index_retained);
  EXPECT_EQ(report->index_memory_bytes, 0u);
  EXPECT_EQ(report->index_stats.total_buckets, 0u);
  EXPECT_EQ(clusterer->index().status().code(),
            StatusCode::kInvalidArgument);

  auto routed = clusterer->PredictRouted(dataset);
  auto predicted = clusterer->Predict(dataset);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(*routed, *predicted);
}

TEST(RoutedPredictTest, EmptyProbeFallsBackExhaustively) {
  // Fitted items use codes [0, 8); the arrival's tokens are entirely
  // disjoint codes, so (deterministic under the fixed hash seed) it
  // lands in no fit-time bucket and must take the exhaustive fallback.
  std::vector<uint32_t> codes;
  for (uint32_t item = 0; item < 16; ++item) {
    for (uint32_t j = 0; j < 4; ++j) codes.push_back((item / 8) * 4 + j);
  }
  const auto fit_data =
      CategoricalDataset::FromCodes(16, 4, 32, std::move(codes))
          .ValueOrDie();
  const auto arrivals = CategoricalDataset::FromCodes(
                            1, 4, 32, {20, 21, 22, 23})
                            .ValueOrDie();

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(2, 1, 1);
  spec.minhash.banding = {4, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(fit_data);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Test precondition: the probe really is empty (checked through the
  // standalone twin of the retained index).
  ClusterShortlistProvider standalone(spec.minhash, 2);
  ASSERT_TRUE(standalone.Prepare(fit_data).ok());
  std::vector<uint32_t> tokens, candidates;
  arrivals.PresentTokens(0, &tokens);
  standalone.GetCandidatesForTokens(tokens, report->result.assignment,
                                    &candidates);
  ASSERT_TRUE(candidates.empty())
      << "fixture drift: the arrival collided with a fitted bucket";

  auto routed = clusterer->PredictRouted(arrivals);
  auto predicted = clusterer->Predict(arrivals);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(*routed, *predicted);
}

TEST(RoutedPredictTest, SingleClusterAndShapeErrors) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(1, 4, 3);  // k = 1
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());

  // Routed prediction needs a fit first.
  EXPECT_EQ(clusterer->PredictRouted(dataset).status().code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  auto routed = clusterer->PredictRouted(dataset);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, std::vector<uint32_t>(dataset.num_items(), 0u));

  // Empty and mis-shaped arrival sets are rejected like Predict's.
  EXPECT_EQ(clusterer->PredictRouted(CategoricalDataset())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto skinny =
      CategoricalDataset::FromCodes(2, 2, 40, {0, 1, 2, 3}).ValueOrDie();
  EXPECT_EQ(clusterer->PredictRouted(skinny).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong modality hits the shape seam.
  EXPECT_EQ(clusterer->PredictRouted(NumericFixture()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RoutedPredictTest, IndexHandleEnumeratesDedupCandidates) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  auto handle = clusterer->index();
  ASSERT_TRUE(handle.ok());

  // The report's diagnostics describe exactly the retained handle.
  EXPECT_EQ(report->index_memory_bytes, handle->memory_bytes());
  const BandedIndex::Stats live = handle->ComputeStats();
  EXPECT_EQ(report->index_stats.total_buckets, live.total_buckets);
  EXPECT_EQ(report->index_stats.largest_bucket, live.largest_bucket);

  for (const uint32_t item : {0u, 7u, dataset.num_items() - 1}) {
    const std::vector<uint32_t> peers = handle->CandidateItemsOf(item);
    // An item shares every bucket with itself; the list is sorted-unique.
    EXPECT_TRUE(std::binary_search(peers.begin(), peers.end(), item));
    EXPECT_TRUE(std::is_sorted(peers.begin(), peers.end()));
    EXPECT_TRUE(std::adjacent_find(peers.begin(), peers.end()) ==
                peers.end());
    const std::vector<uint32_t> clusters = handle->CandidateClustersOf(item);
    EXPECT_TRUE(std::binary_search(clusters.begin(), clusters.end(),
                                   handle->ClusterOf(item)));
    for (const uint32_t cluster : clusters) EXPECT_LT(cluster, 8u);
    // The cluster set is exactly the peers' clusters.
    std::set<uint32_t> expected;
    for (const uint32_t peer : peers) expected.insert(handle->ClusterOf(peer));
    EXPECT_EQ(std::vector<uint32_t>(expected.begin(), expected.end()),
              clusters);
  }

  // A second Fit replaces the retained state; the fresh handle's counter
  // restarts at one signing pass (never two — the new fit signed once).
  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  auto fresh = clusterer->index();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->dataset_sign_passes(), 1u);
}

TEST(RoutedPredictTest, CancelDuringPrepareInstallsNoIndex) {
  const CategoricalDataset dataset = CategoricalFixture();

  // Reference: the state after the initial assignment only.
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.max_iterations = 0;
  auto base_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(base_clusterer.ok());
  auto base = base_clusterer->Fit(dataset);
  ASSERT_TRUE(base.ok());

  // Cancel at the first poll after the initial pass completes — with
  // threads=1 that is Prepare's first signing-batch poll (one poll per
  // chunk of the initial pass, one after it, then Prepare). Before this
  // PR the hook was not polled again until the index was fully built, so
  // the report carried diagnostics of an index the caller never asked to
  // finish; now Prepare aborts at the batch boundary and installs
  // nothing.
  spec.engine.max_iterations = 100;
  const int chunk_polls = static_cast<int>(
      (dataset.num_items() + spec.engine.chunk_size - 1) /
      spec.engine.chunk_size);
  int total_polls = 0;
  spec.engine.cancel = [&, chunk_polls] {
    ++total_polls;
    return total_polls > chunk_polls + 1;
  };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_TRUE(report->result.iterations.empty());
  // The completed initial assignment is reported...
  EXPECT_EQ(report->result.assignment, base->result.assignment);
  // ...but no partial index leaks into the report or the model.
  EXPECT_FALSE(report->has_index);
  EXPECT_FALSE(report->index_retained);
  EXPECT_EQ(report->index_memory_bytes, 0u);
  EXPECT_EQ(report->index_stats.total_buckets, 0u);
  EXPECT_EQ(clusterer->index().status().code(),
            StatusCode::kInvalidArgument);

  // The cancelled-but-usable model routes through the exhaustive
  // fallback.
  EXPECT_TRUE(clusterer->fitted());
  auto routed = clusterer->PredictRouted(dataset);
  auto predicted = clusterer->Predict(dataset);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(*routed, *predicted);
}

TEST(FacadeReportTest, EnumRoundTrips) {
  for (const Modality modality :
       {Modality::kCategorical, Modality::kNumeric, Modality::kMixed,
        Modality::kTextBinarized}) {
    auto parsed = ParseModality(ModalityToString(modality));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, modality);
  }
  for (const Accelerator accelerator :
       {Accelerator::kExhaustive, Accelerator::kMinHash,
        Accelerator::kSimHash, Accelerator::kMixedConcat,
        Accelerator::kCanopy}) {
    auto parsed = ParseAccelerator(AcceleratorToString(accelerator));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, accelerator);
  }
  EXPECT_EQ(ParseModality("tabular").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseAccelerator("warp-drive").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lshclust
