// Tests of the lshclust::Clusterer front door (api/clusterer.h):
//
//  * Golden parity: for every (modality x accelerator) cell the facade's
//    Fit must be bit-identical — assignments, per-iteration moves /
//    shortlist stats / costs, and centroids (checked through Predict) —
//    to driving the corresponding ClusteringEngine instantiation
//    directly, at threads {1,4} x shards {1,3}.
//  * Validation: every invalid ClustererSpec combination returns the
//    right StatusCode with an actionable message instead of aborting.
//  * Hooks: the progress callback fires once per refinement iteration
//    with the recorded stats; the cancellation hook stops a run between
//    iterations (and at shard-chunk boundaries) and surfaces
//    StatusCode::kCancelled with the partial FitReport.
//  * Streaming: MakeStreamingSession reproduces StreamingMHKModes
//    bit-for-bit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "api/clusterer.h"
#include "clustering/kmodes.h"
#include "clustering/kprototypes.h"
#include "core/canopy_kmodes.h"
#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/mh_kmodes.h"
#include "core/streaming.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/tfidf.h"

namespace lshclust {
namespace {

CategoricalDataset CategoricalFixture() {
  ConjunctiveDataOptions options;
  options.num_items = 300;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

NumericDataset NumericFixture() {
  GaussianMixtureOptions options;
  options.num_items = 240;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  return GenerateGaussianMixture(options).ValueOrDie();
}

MixedDataset MixedFixture() {
  MixedDataOptions options;
  options.categorical.num_items = 200;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  return GenerateMixedData(options).ValueOrDie();
}

/// Binary word-presence items from the synthetic Yahoo!-like corpus —
/// the kTextBinarized modality's real input shape.
CategoricalDataset TextFixture() {
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 10;
  corpus_options.questions_per_topic = 12;
  corpus_options.seed = 7;
  const TokenizedCorpus corpus = GenerateYahooLikeCorpus(corpus_options);
  auto model = TopicTfIdf::Compute(corpus);
  TfIdfOptions tfidf;
  tfidf.threshold = 0.3;
  return BinarizeCorpus(corpus, model->SelectVocabulary(tfidf)).ValueOrDie();
}

void ExpectIdenticalRuns(const ClusteringResult& a,
                         const ClusteringResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].moves, b.iterations[i].moves) << "iter " << i;
    EXPECT_EQ(a.iterations[i].mean_shortlist, b.iterations[i].mean_shortlist)
        << "iter " << i;
    EXPECT_EQ(a.iterations[i].cost, b.iterations[i].cost) << "iter " << i;
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
}

EngineOptions BaseEngine(uint32_t k, uint32_t threads, uint32_t shards) {
  EngineOptions engine;
  engine.num_clusters = k;
  engine.max_iterations = 6;
  engine.seed = 5;
  engine.num_threads = threads;
  engine.num_shards = shards;
  engine.chunk_size = 64;
  return engine;
}

/// Runs one facade cell and its direct-engine twin, proving bit-identity
/// of the run and (through Predict on the training items) of the
/// centroids. `direct` is invoked as direct(options, &centroids_out).
template <typename Traits, typename DirectFn>
void ExpectFacadeParity(const ClustererSpec& spec,
                        const typename Traits::Dataset& dataset,
                        const typename Traits::Options& direct_options,
                        const DirectFn& direct) {
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok()) << clusterer.status().ToString();
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok());

  typename Traits::Centroids centroids = Traits::MakeCentroids(
      dataset, direct_options);
  auto reference = direct(direct_options, &centroids);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectIdenticalRuns(report->result, *reference);

  // Centroid parity, observed through the facade's Predict: each training
  // item's nearest fitted centroid must match a manual scan against the
  // direct run's centroids.
  auto predicted = clusterer->Predict(dataset);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  const uint32_t k = direct_options.num_clusters;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    uint32_t best_cluster = 0;
    auto best = Traits::template ComputeDistance<false>(
        dataset, centroids, direct_options, item, 0,
        Traits::kInfiniteDistance);
    for (uint32_t cluster = 1; cluster < k; ++cluster) {
      const auto distance = Traits::template ComputeDistance<false>(
          dataset, centroids, direct_options, item, cluster,
          Traits::kInfiniteDistance);
      if (distance < best) {
        best = distance;
        best_cluster = cluster;
      }
    }
    ASSERT_EQ((*predicted)[item], best_cluster) << "item " << item;
  }
}

struct ParityGrid {
  uint32_t threads;
  uint32_t shards;
};
const ParityGrid kGrid[] = {{1, 1}, {1, 3}, {4, 1}, {4, 3}};

// ------------------------------------------------------------- parity ----

TEST(FacadeParityTest, CategoricalCells) {
  const CategoricalDataset dataset = CategoricalFixture();
  for (const Modality modality :
       {Modality::kCategorical, Modality::kTextBinarized}) {
    for (const auto& grid : kGrid) {
      ClustererSpec spec;
      spec.modality = modality;
      spec.engine = BaseEngine(8, grid.threads, grid.shards);

      spec.accelerator = Accelerator::kExhaustive;
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            ExhaustiveProvider provider;
            return RunEngine(dataset, options, provider, centroids);
          });

      spec.accelerator = Accelerator::kMinHash;
      spec.minhash.banding = {8, 2};
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            ClusterShortlistProvider provider(spec.minhash,
                                              options.num_clusters);
            return RunEngine(dataset, options, provider, centroids);
          });

      spec.accelerator = Accelerator::kCanopy;
      spec.canopy.cheap_attributes = 4;
      ExpectFacadeParity<CategoricalClusteringTraits>(
          spec, dataset, spec.engine,
          [&](const EngineOptions& options, ModeTable* centroids) {
            CanopyShortlistProvider provider(spec.canopy,
                                             options.num_clusters);
            return RunEngine(dataset, options, provider, centroids);
          });
    }
  }
}

TEST(FacadeParityTest, TextBinarizedOnRealBinarizedCorpus) {
  // The categorical grid above already proves kTextBinarized dispatch;
  // this runs the modality on its actual input shape (sparse binarized
  // text with absence semantics).
  const CategoricalDataset dataset = TextFixture();
  ClustererSpec spec;
  spec.modality = Modality::kTextBinarized;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(10, 4, 3);
  spec.minhash.banding = {10, 1};
  ExpectFacadeParity<CategoricalClusteringTraits>(
      spec, dataset, spec.engine,
      [&](const EngineOptions& options, ModeTable* centroids) {
        ClusterShortlistProvider provider(spec.minhash, options.num_clusters);
        return RunEngine(dataset, options, provider, centroids);
      });
}

TEST(FacadeParityTest, NumericCells) {
  const NumericDataset dataset = NumericFixture();
  for (const auto& grid : kGrid) {
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.engine = BaseEngine(6, grid.threads, grid.shards);
    KMeansOptions options;
    static_cast<EngineOptions&>(options) = spec.engine;

    spec.accelerator = Accelerator::kExhaustive;
    ExpectFacadeParity<NumericClusteringTraits>(
        spec, dataset, options,
        [&](const KMeansOptions& direct, CentroidTable* centroids) {
          ExhaustiveProvider provider;
          return RunKMeansEngine(dataset, direct, provider, centroids);
        });

    spec.accelerator = Accelerator::kSimHash;
    spec.simhash.banding = {6, 3};
    ExpectFacadeParity<NumericClusteringTraits>(
        spec, dataset, options,
        [&](const KMeansOptions& direct, CentroidTable* centroids) {
          SimHashShortlistProvider provider(spec.simhash,
                                            direct.num_clusters);
          return RunKMeansEngine(dataset, direct, provider, centroids);
        });
  }
}

TEST(FacadeParityTest, MixedCells) {
  const MixedDataset dataset = MixedFixture();
  for (const auto& grid : kGrid) {
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.engine = BaseEngine(5, grid.threads, grid.shards);
    spec.gamma = 0.5;
    KPrototypesOptions options;
    static_cast<EngineOptions&>(options) = spec.engine;
    options.gamma = spec.gamma;

    spec.accelerator = Accelerator::kExhaustive;
    ExpectFacadeParity<MixedClusteringTraits>(
        spec, dataset, options,
        [&](const KPrototypesOptions& direct,
            MixedClusteringTraits::Centroids* centroids) {
          ExhaustiveProvider provider;
          return RunKPrototypesEngine(dataset, direct, provider, centroids);
        });

    spec.accelerator = Accelerator::kMixedConcat;
    spec.mixed_index.categorical_banding = {8, 2};
    spec.mixed_index.numeric_banding = {4, 8};
    ExpectFacadeParity<MixedClusteringTraits>(
        spec, dataset, options,
        [&](const KPrototypesOptions& direct,
            MixedClusteringTraits::Centroids* centroids) {
          MixedShortlistProvider provider(spec.mixed_index,
                                          direct.num_clusters);
          return RunKPrototypesEngine(dataset, direct, provider, centroids);
        });
  }
}

TEST(FacadeParityTest, LegacyEntryPointsMatchFacade) {
  // The deprecated shims route through the facade; their results must
  // still match a facade call spelled directly.
  const CategoricalDataset dataset = CategoricalFixture();
  MHKModesOptions legacy;
  legacy.engine = BaseEngine(8, 1, 1);
  legacy.index.banding = {8, 2};
  auto shim = RunMHKModes(dataset, legacy);
  ASSERT_TRUE(shim.ok());

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = legacy.engine;
  spec.minhash = legacy.index;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  ExpectIdenticalRuns(shim->result, report->result);
  EXPECT_TRUE(report->has_index);
  EXPECT_EQ(shim->index_memory_bytes, report->index_memory_bytes);
}

// --------------------------------------------------------- validation ----

Status CreateStatus(const ClustererSpec& spec) {
  return Clusterer::Create(spec).status();
}

TEST(FacadeValidationTest, RejectsIncompatibleAcceleratorModalityPairs) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;

  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kCanopy;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("canopy"), std::string::npos);
  EXPECT_NE(status.message().find("simhash"), std::string::npos)
      << "message should name the supported accelerators: "
      << status.message();

  spec.accelerator = Accelerator::kMinHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kMixedConcat;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kSimHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kMixedConcat;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMinHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.accelerator = Accelerator::kCanopy;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kTextBinarized;
  spec.accelerator = Accelerator::kSimHash;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectsBadEngineOptions) {
  ClustererSpec spec;

  spec.engine.num_clusters = 0;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_clusters"), std::string::npos);

  spec.engine.num_clusters = 4;
  spec.engine.num_shards = 0;
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_shards"), std::string::npos);

  spec.engine.num_shards = 1;
  spec.engine.chunk_size = 0;
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("chunk_size"), std::string::npos);

  spec.engine.chunk_size = 1024;
  spec.engine.initial_seeds = {1, 2};  // wrong arity for k=4
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("initial_seeds"), std::string::npos);
}

TEST(FacadeValidationTest, RejectsCategoricalOnlySeedingOffModality) {
  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  spec.engine.init_method = InitMethod::kHuang;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("kRandom"), std::string::npos);

  spec.modality = Modality::kMixed;
  spec.engine.init_method = InitMethod::kCao;
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  // Huang is fine on categorical data.
  spec.modality = Modality::kCategorical;
  spec.engine.init_method = InitMethod::kHuang;
  EXPECT_TRUE(CreateStatus(spec).ok());
}

TEST(FacadeValidationTest, RejectsBadAcceleratorOptions) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;

  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.minhash.banding = {0, 5};
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("spec.minhash"), std::string::npos);

  spec.minhash.banding = {20, 5};
  spec.accelerator = Accelerator::kCanopy;
  spec.canopy.tight_fraction = 0.9;
  spec.canopy.loose_fraction = 0.5;  // tight > loose
  status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("spec.canopy"), std::string::npos);

  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kSimHash;
  spec.simhash.banding = {16, 0};
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);

  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMixedConcat;
  spec.mixed_index.numeric_banding = {0, 16};
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectsNegativeGammaOnMixed) {
  ClustererSpec spec;
  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  spec.gamma = -0.25;
  Status status = CreateStatus(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("gamma"), std::string::npos);

  // NaN / inf would silently poison every mixed distance; both must be
  // rejected up front.
  spec.gamma = std::nan("");
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
  spec.gamma = std::numeric_limits<double>::infinity();
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, RejectedFitPreservesPreviousModel) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine.num_clusters = 8;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  auto before = clusterer->Predict(dataset);
  ASSERT_TRUE(before.ok());

  // k > n: the engine rejects the run; the fitted model must survive.
  auto tiny = CategoricalDataset::FromCodes(2, 12, 40,
                                            std::vector<uint32_t>(24, 0));
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(clusterer->Fit(*tiny).ok());
  EXPECT_TRUE(clusterer->fitted());
  auto after = clusterer->Predict(dataset);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(FacadeValidationTest, RejectsUnrecognizedEnumValues) {
  ClustererSpec spec;
  spec.engine.num_clusters = 4;
  spec.modality = static_cast<Modality>(250);
  EXPECT_EQ(CreateStatus(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, FitRejectsMismatchedDatasetShape) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(NumericFixture());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("categorical"),
            std::string::npos);
}

TEST(FacadeValidationTest, PredictRequiresFitAndMatchingShape) {
  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  EXPECT_FALSE(clusterer->fitted());
  EXPECT_EQ(clusterer->Predict(NumericFixture()).status().code(),
            StatusCode::kInvalidArgument);

  const NumericDataset dataset = NumericFixture();
  ASSERT_TRUE(clusterer->Fit(dataset).ok());
  EXPECT_TRUE(clusterer->fitted());

  // Wrong dimensionality is rejected.
  auto skinny = NumericDataset::FromValues(2, 2, {0.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(skinny.ok());
  EXPECT_EQ(clusterer->Predict(*skinny).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FacadeValidationTest, StreamingRequiresMinHashSpec) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  Status status =
      clusterer->MakeStreamingSession(dataset).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("minhash"), std::string::npos);

  spec.accelerator = Accelerator::kMinHash;
  auto lsh_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(lsh_clusterer.ok());
  StreamingSessionOptions bad;
  bad.ingest_shards = 0;
  EXPECT_EQ(lsh_clusterer->MakeStreamingSession(dataset, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- hooks ----

TEST(FacadeHooksTest, ProgressFiresOncePerIterationWithRecordedStats) {
  const CategoricalDataset dataset = CategoricalFixture();
  std::vector<IterationStats> seen;
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.progress = [&](const IterationStats& stats) {
    seen.push_back(stats);
  };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(seen.size(), report->result.iterations.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].iteration, report->result.iterations[i].iteration);
    EXPECT_EQ(seen[i].moves, report->result.iterations[i].moves);
    EXPECT_EQ(seen[i].cost, report->result.iterations[i].cost);
  }
}

TEST(FacadeHooksTest, CancelBetweenIterationsReturnsPartialReport) {
  const CategoricalDataset dataset = CategoricalFixture();

  // Reference: the honest two-iteration prefix.
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.max_iterations = 2;
  auto prefix_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(prefix_clusterer.ok());
  auto prefix = prefix_clusterer->Fit(dataset);
  ASSERT_TRUE(prefix.ok());
  ASSERT_EQ(prefix->result.iterations.size(), 2u);

  // Cancelled run: stop as soon as two iterations completed.
  int completed = 0;
  spec.engine.max_iterations = 100;
  spec.engine.progress = [&](const IterationStats&) { ++completed; };
  spec.engine.cancel = [&] { return completed >= 2; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_FALSE(report->result.converged);
  ASSERT_EQ(report->result.iterations.size(), 2u);
  // The partial report is exactly the two-iteration prefix — an
  // interrupted pass never leaks into it.
  ExpectIdenticalRuns(report->result, prefix->result);
  // A cancelled fit still yields a usable model.
  EXPECT_TRUE(clusterer->fitted());
  EXPECT_TRUE(clusterer->Predict(dataset).ok());
}

TEST(FacadeHooksTest, CancelDuringInitialPassReturnsEmptyIterations) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine = BaseEngine(8, 1, 1);
  spec.engine.cancel = [] { return true; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_TRUE(report->result.iterations.empty());
  // The initial pass never completed, so there is no consistent state to
  // report — a half-applied assignment must not leak out.
  EXPECT_TRUE(report->result.assignment.empty());
}

TEST(FacadeHooksTest, CancelMidPassRollsBackToLastCompletedIteration) {
  const CategoricalDataset dataset = CategoricalFixture();

  // Reference: stop exactly after the initial assignment (no refinement).
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine = BaseEngine(8, 1, 1);
  spec.engine.max_iterations = 0;
  auto base_clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(base_clusterer.ok());
  auto base = base_clusterer->Fit(dataset);
  ASSERT_TRUE(base.ok());

  // Cancel mid-way through refinement iteration 1's pass. With threads=1
  // the poll sequence is deterministic: one poll per chunk of the initial
  // pass (ceil(n / chunk_size)), one after the pass, one after Prepare,
  // one at the top of iteration 1, then one per chunk of its pass.
  // Triggering two chunks into that pass means two chunks' assignments
  // were already overwritten when the cancel lands — exactly what the
  // roll-back must undo. (If the poll schedule ever shifts earlier the
  // test still holds: cancelling sooner also leaves the
  // initial-assignment state.)
  spec.engine.max_iterations = 100;
  const int chunk_polls = static_cast<int>(
      (dataset.num_items() + spec.engine.chunk_size - 1) /
      spec.engine.chunk_size);
  const int polls_before_refinement_pass = chunk_polls + 3;
  int total_polls = 0;
  spec.engine.cancel = [&, polls_before_refinement_pass] {
    ++total_polls;
    return total_polls > polls_before_refinement_pass + 2;
  };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  auto report = clusterer->Fit(dataset);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(report->result.cancelled);
  EXPECT_TRUE(report->result.iterations.empty());
  // The interrupted first refinement pass was rolled back: the assignment
  // is bit-identical to the max_iterations=0 run.
  EXPECT_EQ(report->result.assignment, base->result.assignment);
}

TEST(FacadeHooksTest, LegacyShimsSurfaceCancellationAsError) {
  // The legacy entry points have no channel for a partial report; a
  // cancelled run must come back as the kCancelled error, never as an
  // ok() result with a partial (possibly empty) assignment.
  const CategoricalDataset dataset = CategoricalFixture();
  MHKModesOptions options;
  options.engine = BaseEngine(8, 1, 1);
  options.engine.cancel = [] { return true; };
  options.index.banding = {8, 2};
  auto run = RunMHKModes(dataset, options);
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(FacadeHooksTest, CancelledBootstrapFailsStreamingSessionCreation) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1, 1);
  spec.minhash.banding = {8, 2};
  spec.engine.cancel = [] { return true; };
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  // A session must never be built on a partial warm-up clustering.
  Status status = clusterer->MakeStreamingSession(dataset).status();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------- streaming ----

TEST(FacadeStreamingTest, SessionMatchesDirectStreamingEngine) {
  ConjunctiveDataOptions data;
  data.num_items = 400;
  data.num_attributes = 16;
  data.num_clusters = 10;
  data.domain_size = 60;
  data.seed = 23;
  const auto all = GenerateConjunctiveRuleData(data).ValueOrDie();
  const uint32_t warmup_items = 300;
  const uint32_t m = all.num_attributes();
  auto warmup = CategoricalDataset::FromCodes(
      warmup_items, m, all.num_codes(),
      {all.codes().begin(), all.codes().begin() + warmup_items * m});
  ASSERT_TRUE(warmup.ok());

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(10, 1, 1);
  spec.minhash.banding = {10, 2};

  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  StreamingSessionOptions session_options;
  session_options.ingest_threads = 2;
  auto session = clusterer->MakeStreamingSession(*warmup, session_options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  StreamingMHKModesOptions direct_options;
  direct_options.bootstrap.engine = spec.engine;
  direct_options.bootstrap.index = spec.minhash;
  direct_options.ingest_threads = 2;
  auto direct = StreamingMHKModes::Bootstrap(*warmup, direct_options);
  ASSERT_TRUE(direct.ok());

  const std::span<const uint32_t> rows(
      all.codes().data() + static_cast<size_t>(warmup_items) * m,
      static_cast<size_t>(all.num_items() - warmup_items) * m);
  ASSERT_TRUE(session->IngestBatch(rows).ok());
  ASSERT_TRUE(direct->IngestBatch(rows).ok());

  EXPECT_EQ(session->assignment(), direct->assignment());
  EXPECT_EQ(session->stats().ingested, direct->stats().ingested);
  EXPECT_EQ(session->stats().shortlist_total,
            direct->stats().shortlist_total);
  EXPECT_EQ(session->num_clusters(), 10u);
  EXPECT_EQ(session->num_attributes(), m);
}

// ------------------------------------------------------------- report ----

TEST(FacadeReportTest, IndexDiagnosticsOnlyForIndexAccelerators) {
  const CategoricalDataset dataset = CategoricalFixture();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine = BaseEngine(8, 1, 1);

  spec.accelerator = Accelerator::kExhaustive;
  auto exhaustive = Clusterer::Create(spec);
  ASSERT_TRUE(exhaustive.ok());
  auto plain = exhaustive->Fit(dataset);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_index);

  spec.accelerator = Accelerator::kMinHash;
  spec.minhash.banding = {8, 2};
  auto accelerated = Clusterer::Create(spec);
  ASSERT_TRUE(accelerated.ok());
  auto indexed = accelerated->Fit(dataset);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->has_index);
  EXPECT_GT(indexed->index_memory_bytes, 0u);
  EXPECT_GT(indexed->index_stats.total_buckets, 0u);
}

TEST(FacadeReportTest, EnumRoundTrips) {
  for (const Modality modality :
       {Modality::kCategorical, Modality::kNumeric, Modality::kMixed,
        Modality::kTextBinarized}) {
    auto parsed = ParseModality(ModalityToString(modality));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, modality);
  }
  for (const Accelerator accelerator :
       {Accelerator::kExhaustive, Accelerator::kMinHash,
        Accelerator::kSimHash, Accelerator::kMixedConcat,
        Accelerator::kCanopy}) {
    auto parsed = ParseAccelerator(AcceleratorToString(accelerator));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, accelerator);
  }
  EXPECT_EQ(ParseModality("tabular").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseAccelerator("warp-drive").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lshclust
