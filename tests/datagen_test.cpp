// Unit tests for src/datagen: the conjunctive-rule generator (datgen
// substitute), the Yahoo!-like corpus generator, and the Gaussian mixture.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "clustering/dissimilarity.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/yahoo_like_corpus.h"

namespace lshclust {
namespace {

// ---------------------------------------------------------- conjunctive --

ConjunctiveDataOptions SmallOptions() {
  ConjunctiveDataOptions options;
  options.num_items = 400;
  options.num_attributes = 20;
  options.num_clusters = 16;
  options.domain_size = 100;
  options.seed = 5;
  return options;
}

TEST(ConjunctiveGeneratorTest, ShapeAndLabels) {
  const auto dataset = GenerateConjunctiveRuleData(SmallOptions()).ValueOrDie();
  EXPECT_EQ(dataset.num_items(), 400u);
  EXPECT_EQ(dataset.num_attributes(), 20u);
  EXPECT_EQ(dataset.num_codes(), 20u * 100u);
  ASSERT_TRUE(dataset.has_labels());
  // Round-robin: every cluster gets 400/16 = 25 items.
  std::map<uint32_t, int> counts;
  for (const uint32_t label : dataset.labels()) ++counts[label];
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [label, count] : counts) EXPECT_EQ(count, 25);
}

TEST(ConjunctiveGeneratorTest, CodesAreAttributeScoped) {
  // Code of attribute a lies in [a*domain, (a+1)*domain): globally unique
  // across attributes, as the MinHash token contract requires.
  const auto options = SmallOptions();
  const auto dataset = GenerateConjunctiveRuleData(options).ValueOrDie();
  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    const auto row = dataset.Row(i);
    for (uint32_t a = 0; a < dataset.num_attributes(); ++a) {
      EXPECT_GE(row[a], a * options.domain_size);
      EXPECT_LT(row[a], (a + 1) * options.domain_size);
    }
  }
}

TEST(ConjunctiveGeneratorTest, SameClusterSharesRuleAttributes) {
  // Items of one cluster agree on at least min_rule_fraction*m attributes
  // (the rule), so their mismatch distance is at most m - min_rule.
  auto options = SmallOptions();
  options.min_rule_fraction = 0.5;
  options.max_rule_fraction = 0.8;
  const auto dataset = GenerateConjunctiveRuleData(options).ValueOrDie();
  const uint32_t m = dataset.num_attributes();
  const uint32_t max_distance =
      m - static_cast<uint32_t>(options.min_rule_fraction * m);
  for (uint32_t i = 0; i < 100; ++i) {
    for (uint32_t j = i + 1; j < 100; ++j) {
      if (dataset.labels()[i] != dataset.labels()[j]) continue;
      EXPECT_LE(MismatchDistance(dataset.Row(i), dataset.Row(j)),
                max_distance)
          << "items " << i << ", " << j;
    }
  }
}

TEST(ConjunctiveGeneratorTest, DifferentClustersAreFarApart) {
  // With a huge domain, noise attributes collide with negligible
  // probability, so cross-cluster distances should be near m.
  auto options = SmallOptions();
  options.domain_size = 40000;  // the paper's domain
  const auto dataset = GenerateConjunctiveRuleData(options).ValueOrDie();
  const uint32_t m = dataset.num_attributes();
  uint64_t total = 0;
  uint32_t pairs = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    for (uint32_t j = i + 1; j < 50; ++j) {
      if (dataset.labels()[i] == dataset.labels()[j]) continue;
      total += MismatchDistance(dataset.Row(i), dataset.Row(j));
      ++pairs;
    }
  }
  EXPECT_GT(static_cast<double>(total) / pairs, 0.9 * m);
}

TEST(ConjunctiveGeneratorTest, DeterministicPerSeed) {
  const auto a = GenerateConjunctiveRuleData(SmallOptions()).ValueOrDie();
  const auto b = GenerateConjunctiveRuleData(SmallOptions()).ValueOrDie();
  EXPECT_TRUE(std::equal(a.codes().begin(), a.codes().end(),
                         b.codes().begin()));
  auto different = SmallOptions();
  different.seed = 6;
  const auto c = GenerateConjunctiveRuleData(different).ValueOrDie();
  EXPECT_FALSE(std::equal(a.codes().begin(), a.codes().end(),
                          c.codes().begin()));
}

TEST(ConjunctiveGeneratorTest, ValidatesOptions) {
  auto options = SmallOptions();
  options.num_items = 0;
  EXPECT_TRUE(GenerateConjunctiveRuleData(options)
                  .status().IsInvalidArgument());
  options = SmallOptions();
  options.num_clusters = options.num_items + 1;
  EXPECT_TRUE(GenerateConjunctiveRuleData(options)
                  .status().IsInvalidArgument());
  options = SmallOptions();
  options.domain_size = 1;
  EXPECT_TRUE(GenerateConjunctiveRuleData(options)
                  .status().IsInvalidArgument());
  options = SmallOptions();
  options.min_rule_fraction = 0.9;
  options.max_rule_fraction = 0.5;
  EXPECT_TRUE(GenerateConjunctiveRuleData(options)
                  .status().IsInvalidArgument());
  options = SmallOptions();
  options.num_attributes = 200000;
  options.domain_size = 40000;  // 8e9 codes: exceeds 32-bit code space
  EXPECT_TRUE(GenerateConjunctiveRuleData(options)
                  .status().IsInvalidArgument());
}

// ------------------------------------------------------------ yahoo corpus --

YahooCorpusOptions SmallCorpusOptions() {
  YahooCorpusOptions options;
  options.num_topics = 20;
  options.questions_per_topic = 15;
  options.background_vocabulary = 300;
  options.keywords_per_topic = 6;
  options.seed = 9;
  return options;
}

TEST(YahooCorpusTest, ShapeAndValidity) {
  const auto corpus = GenerateYahooLikeCorpus(SmallCorpusOptions());
  EXPECT_TRUE(corpus.Valid());
  EXPECT_EQ(corpus.num_topics, 20u);
  EXPECT_EQ(corpus.documents.size(), 20u * 15u);
  EXPECT_EQ(corpus.vocabulary.size(), 300u + 20u * 6u);
}

TEST(YahooCorpusTest, QuestionLengthsWithinBounds) {
  const auto options = SmallCorpusOptions();
  const auto corpus = GenerateYahooLikeCorpus(options);
  for (const auto& doc : corpus.documents) {
    EXPECT_GE(doc.words.size(), options.min_words);
    EXPECT_LE(doc.words.size(), options.max_words);
  }
}

TEST(YahooCorpusTest, TopicsUseTheirOwnKeywords) {
  auto options = SmallCorpusOptions();
  options.keyword_overlap = 0.0;
  options.keyword_probability = 1.0;  // keywords only
  const auto corpus = GenerateYahooLikeCorpus(options);
  for (const auto& doc : corpus.documents) {
    for (const uint32_t word : doc.words) {
      // All words must be keyword ids of the document's own topic.
      const uint32_t keyword_base =
          options.background_vocabulary +
          doc.topic * options.keywords_per_topic;
      EXPECT_GE(word, keyword_base);
      EXPECT_LT(word, keyword_base + options.keywords_per_topic);
    }
  }
}

TEST(YahooCorpusTest, ZeroKeywordProbabilityUsesOnlyBackground) {
  auto options = SmallCorpusOptions();
  options.keyword_probability = 0.0;
  const auto corpus = GenerateYahooLikeCorpus(options);
  for (const auto& doc : corpus.documents) {
    for (const uint32_t word : doc.words) {
      EXPECT_LT(word, options.background_vocabulary);
    }
  }
}

TEST(YahooCorpusTest, OverlapSharesKeywordsBetweenNeighbours) {
  auto options = SmallCorpusOptions();
  options.keyword_overlap = 0.5;
  options.keyword_probability = 1.0;
  const auto corpus = GenerateYahooLikeCorpus(options);
  // With 50% overlap, topic t draws some words from topic t+1's range.
  std::set<uint32_t> topic0_words;
  for (const auto& doc : corpus.documents) {
    if (doc.topic == 0) {
      topic0_words.insert(doc.words.begin(), doc.words.end());
    }
  }
  bool uses_foreign = false;
  const uint32_t own_base = options.background_vocabulary;
  for (const uint32_t word : topic0_words) {
    if (word >= own_base + options.keywords_per_topic) uses_foreign = true;
  }
  EXPECT_TRUE(uses_foreign);
}

TEST(YahooCorpusTest, DeterministicPerSeed) {
  const auto a = GenerateYahooLikeCorpus(SmallCorpusOptions());
  const auto b = GenerateYahooLikeCorpus(SmallCorpusOptions());
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i].words, b.documents[i].words);
  }
}

TEST(YahooCorpusTest, RenderQuestionTextJoinsWords) {
  const auto corpus = GenerateYahooLikeCorpus(SmallCorpusOptions());
  const std::string text = RenderQuestionText(corpus, 0);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '?');
  // Word count in the text equals the document length.
  size_t spaces = 0;
  for (const char c : text) spaces += c == ' ' ? 1 : 0;
  EXPECT_EQ(spaces + 1, corpus.documents[0].words.size());
}

// -------------------------------------------------------- gaussian mixture --

TEST(GaussianMixtureTest, ShapeAndLabels) {
  GaussianMixtureOptions options;
  options.num_items = 100;
  options.dimensions = 5;
  options.num_clusters = 4;
  options.seed = 3;
  const auto dataset = GenerateGaussianMixture(options).ValueOrDie();
  EXPECT_EQ(dataset.num_items(), 100u);
  EXPECT_EQ(dataset.dimensions(), 5u);
  ASSERT_TRUE(dataset.has_labels());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dataset.labels()[i], i % 4);
  }
}

TEST(GaussianMixtureTest, ItemsClusterAroundTheirCenters) {
  GaussianMixtureOptions options;
  options.num_items = 400;
  options.dimensions = 8;
  options.num_clusters = 4;
  options.center_box = 100.0;
  options.stddev = 0.5;
  options.seed = 7;
  const auto dataset = GenerateGaussianMixture(options).ValueOrDie();
  // Same-cluster distances are tiny relative to cross-cluster ones.
  auto squared_distance = [&](uint32_t i, uint32_t j) {
    double sum = 0;
    for (uint32_t d = 0; d < dataset.dimensions(); ++d) {
      const double diff = dataset.Row(i)[d] - dataset.Row(j)[d];
      sum += diff * diff;
    }
    return sum;
  };
  EXPECT_LT(squared_distance(0, 4), squared_distance(0, 1));  // 0,4 share label
}

TEST(GaussianMixtureTest, ValidatesOptions) {
  GaussianMixtureOptions options;
  options.num_items = 0;
  EXPECT_TRUE(GenerateGaussianMixture(options).status().IsInvalidArgument());
  options.num_items = 5;
  options.num_clusters = 10;
  EXPECT_TRUE(GenerateGaussianMixture(options).status().IsInvalidArgument());
  options.num_clusters = 2;
  options.stddev = -1.0;
  EXPECT_TRUE(GenerateGaussianMixture(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace lshclust
