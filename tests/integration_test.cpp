// Integration tests across modules: full paper pipelines end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "clustering/kmodes.h"
#include "core/experiment.h"
#include "core/mh_kmodes.h"
#include "data/serialize.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/yahoo_like_corpus.h"
#include "metrics/metrics.h"
#include "text/binarizer.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace lshclust {
namespace {

// A provider that enumerates every cluster through the shortlist path —
// plugging it into the engine must reproduce exhaustive K-Modes exactly,
// proving the shortlist machinery itself introduces no behavioural change.
struct AllClustersShortlistProvider {
  static constexpr bool kExhaustive = false;
  uint32_t num_clusters = 0;
  Status Prepare(const CategoricalDataset&) { return Status::OK(); }
  void GetCandidates(uint32_t, std::span<const uint32_t>,
                     std::vector<uint32_t>* out) {
    out->resize(num_clusters);
    for (uint32_t c = 0; c < num_clusters; ++c) (*out)[c] = c;
  }
};

TEST(EngineEquivalenceTest, FullShortlistReproducesBaselineExactly) {
  ConjunctiveDataOptions data;
  data.num_items = 350;
  data.num_attributes = 14;
  data.num_clusters = 25;
  data.domain_size = 12;  // noisy
  data.seed = 3;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  EngineOptions options;
  options.num_clusters = 25;
  options.seed = 5;

  const auto baseline = RunKModes(dataset, options).ValueOrDie();

  AllClustersShortlistProvider provider;
  provider.num_clusters = 25;
  const auto via_shortlist =
      RunEngine(dataset, options, provider).ValueOrDie();

  EXPECT_EQ(baseline.assignment, via_shortlist.assignment);
  EXPECT_EQ(baseline.final_cost, via_shortlist.final_cost);
  ASSERT_EQ(baseline.iterations.size(), via_shortlist.iterations.size());
  for (size_t i = 0; i < baseline.iterations.size(); ++i) {
    EXPECT_EQ(baseline.iterations[i].moves, via_shortlist.iterations[i].moves);
    EXPECT_EQ(baseline.iterations[i].cost, via_shortlist.iterations[i].cost);
  }
}

TEST(SyntheticPipelineTest, MHBeatsBaselineShortlistsAtComparablePurity) {
  // The paper's synthetic experiment in miniature: generate, cluster with
  // both algorithms from shared seeds, compare.
  ConjunctiveDataOptions data;
  data.num_items = 1000;
  data.num_attributes = 25;
  data.num_clusters = 100;
  data.domain_size = 4000;
  data.seed = 7;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  ComparisonOptions options;
  options.num_clusters = 100;
  options.seed = 9;
  const auto runs = RunComparison(dataset, options,
                                  {KModesSpec(), MHKModesSpec(20, 5)})
                        .ValueOrDie();
  const MethodRun& kmodes = runs[0];
  const MethodRun& mh = runs[1];

  // Shortlists orders of magnitude under k (Fig. 2b's gap).
  double mh_mean_shortlist = 0;
  for (const auto& it : mh.result.iterations) {
    mh_mean_shortlist += it.mean_shortlist;
  }
  mh_mean_shortlist /= static_cast<double>(mh.result.iterations.size());
  EXPECT_LT(mh_mean_shortlist, 20.0);  // vs k = 100

  // Comparable purity (Fig. 8).
  EXPECT_GE(mh.purity, kmodes.purity - 0.1);

  // The index must exist and the baseline must not have one (its "index
  // build" is timing a no-op Prepare, i.e. nanoseconds).
  EXPECT_TRUE(mh.has_index);
  EXPECT_GT(mh.index_memory_bytes, 0u);
  EXPECT_LT(kmodes.result.index_build_seconds, 1e-3);
}

TEST(YahooPipelineTest, CorpusToTfIdfToClusteringEndToEnd) {
  // §IV-B in miniature: corpus -> per-topic TF-IDF -> binary dataset ->
  // K-Modes vs MH-K-Modes -> purity.
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 40;
  corpus_options.questions_per_topic = 25;
  corpus_options.background_vocabulary = 2000;
  corpus_options.keywords_per_topic = 10;
  corpus_options.seed = 11;
  const auto corpus = GenerateYahooLikeCorpus(corpus_options);

  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions tfidf;
  tfidf.threshold = 0.5;
  const auto vocabulary = model.SelectVocabulary(tfidf);
  ASSERT_GT(vocabulary.size(), 20u);

  const auto dataset = BinarizeCorpus(corpus, vocabulary).ValueOrDie();
  ASSERT_TRUE(dataset.has_absence_semantics());
  ASSERT_TRUE(dataset.has_labels());

  ComparisonOptions options;
  options.num_clusters = 40;
  options.seed = 13;
  const auto runs = RunComparison(dataset, options,
                                  {KModesSpec(), MHKModesSpec(1, 1)})
                        .ValueOrDie();
  // Keyword-driven topics are recoverable: both algorithms must beat 0.3
  // purity by a wide margin, and MH must stay comparable to the baseline.
  EXPECT_GT(runs[0].purity, 0.3);
  EXPECT_GE(runs[1].purity, runs[0].purity - 0.1);
}

TEST(YahooPipelineTest, RawTextPathThroughTokenizer) {
  // Render generated questions to text and re-tokenize them — exercising
  // the raw-text front end the real dataset would use.
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 10;
  corpus_options.questions_per_topic = 10;
  corpus_options.seed = 17;
  const auto generated = GenerateYahooLikeCorpus(corpus_options);

  Tokenizer tokenizer;
  TokenizedCorpus retokenized;
  for (uint32_t d = 0; d < generated.documents.size(); ++d) {
    tokenizer.AddDocument(RenderQuestionText(generated, d),
                          generated.documents[d].topic, &retokenized);
  }
  ASSERT_TRUE(retokenized.Valid());
  ASSERT_EQ(retokenized.documents.size(), generated.documents.size());

  const auto model = TopicTfIdf::Compute(retokenized).ValueOrDie();
  TfIdfOptions tfidf;
  tfidf.threshold = 0.4;
  const auto vocabulary = model.SelectVocabulary(tfidf);
  ASSERT_GT(vocabulary.size(), 0u);
  const auto dataset = BinarizeCorpus(retokenized, vocabulary).ValueOrDie();
  EXPECT_GT(dataset.num_items(), 0u);
}

TEST(PersistencePipelineTest, SerializedDatasetClustersIdentically) {
  ConjunctiveDataOptions data;
  data.num_items = 300;
  data.num_attributes = 12;
  data.num_clusters = 20;
  data.domain_size = 50;
  data.seed = 19;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  const auto path =
      (std::filesystem::temp_directory_path() /
       ("lshclust_integration_" + std::to_string(::getpid()) + ".lshc"))
          .string();
  ASSERT_TRUE(SaveDatasetBinary(dataset, path).ok());
  const auto reloaded = LoadDatasetBinary(path).ValueOrDie();
  std::filesystem::remove(path);

  MHKModesOptions options;
  options.engine.num_clusters = 20;
  options.engine.seed = 21;
  options.index.banding = {10, 2};
  const auto a = RunMHKModes(dataset, options).ValueOrDie();
  const auto b = RunMHKModes(reloaded, options).ValueOrDie();
  EXPECT_EQ(a.result.assignment, b.result.assignment);
  EXPECT_EQ(a.result.final_cost, b.result.final_cost);
}

TEST(MetricsIntegrationTest, PurityNmiAriAgreeOnPerfectRecovery) {
  ConjunctiveDataOptions data;
  data.num_items = 120;
  data.num_attributes = 10;
  data.num_clusters = 4;
  data.domain_size = 5000;
  data.min_rule_fraction = 1.0;
  data.max_rule_fraction = 1.0;
  data.seed = 23;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  EngineOptions options;
  options.num_clusters = 4;
  options.initial_seeds = {0, 1, 2, 3};
  const auto result = RunKModes(dataset, options).ValueOrDie();

  const auto table =
      ContingencyTable::Build(result.assignment, dataset.labels())
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(Purity(table), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(table), 1.0, 1e-9);
  EXPECT_NEAR(AdjustedRandIndex(table), 1.0, 1e-9);
}

}  // namespace
}  // namespace lshclust
