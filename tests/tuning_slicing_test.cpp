// Tests for the banding parameter advisor (lsh/tuning.h), dataset
// slicing/sampling/concatenation (data/slicing.h), and the dynamic
// banding index (lsh/dynamic_banded_index.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clustering/dissimilarity.h"
#include "data/csv.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "hashing/minhash.h"
#include "lsh/banded_index.h"
#include "lsh/dynamic_banded_index.h"
#include "lsh/tuning.h"
#include "util/rng.h"

namespace lshclust {
namespace {

// ------------------------------------------------------------- tuning --

TEST(TuningTest, MeetsRequestedErrorBound) {
  for (const uint32_t m : {20u, 100u, 400u}) {
    for (const uint32_t cluster_size : {5u, 20u, 100u}) {
      BandingConstraints constraints;
      constraints.max_error = 0.05;
      constraints.max_hashes = 4096;
      auto recommendation = RecommendBanding(m, cluster_size, constraints);
      ASSERT_TRUE(recommendation.ok())
          << "m=" << m << " |C|=" << cluster_size;
      EXPECT_LE(recommendation->error_bound, 0.05);
      EXPECT_LE(recommendation->num_hashes, 4096u);
      EXPECT_EQ(recommendation->num_hashes,
                recommendation->params.bands * recommendation->params.rows);
    }
  }
}

TEST(TuningTest, PaperWorkedExampleIsFeasible) {
  // §III-C: m=100, |C|=20, r=1, b=25 gives error 0.08. The advisor asked
  // for 0.08 must find something at most that cheap.
  BandingConstraints constraints;
  constraints.max_error = 0.081;
  auto recommendation = RecommendBanding(100, 20, constraints);
  ASSERT_TRUE(recommendation.ok());
  EXPECT_LE(recommendation->num_hashes, 25u);
  EXPECT_LE(recommendation->error_bound, 0.081);
}

TEST(TuningTest, TighterErrorCostsMoreHashes) {
  BandingConstraints loose, tight;
  loose.max_error = 0.2;
  tight.max_error = 0.01;
  const auto cheap = RecommendBanding(100, 20, loose).ValueOrDie();
  const auto expensive = RecommendBanding(100, 20, tight).ValueOrDie();
  EXPECT_LE(cheap.num_hashes, expensive.num_hashes);
}

TEST(TuningTest, BiggerClustersNeedFewerHashes) {
  BandingConstraints constraints;
  constraints.max_error = 0.05;
  const auto small = RecommendBanding(100, 5, constraints).ValueOrDie();
  const auto large = RecommendBanding(100, 200, constraints).ValueOrDie();
  EXPECT_GE(small.num_hashes, large.num_hashes);
}

TEST(TuningTest, InfeasibleBudgetIsOutOfRange) {
  BandingConstraints constraints;
  constraints.max_error = 1e-9;
  constraints.max_hashes = 4;
  EXPECT_TRUE(RecommendBanding(400, 2, constraints).status().IsOutOfRange());
}

TEST(TuningTest, ValidatesArguments) {
  EXPECT_TRUE(RecommendBanding(0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(RecommendBanding(10, 0).status().IsInvalidArgument());
  BandingConstraints bad;
  bad.max_error = 1.5;
  EXPECT_TRUE(RecommendBanding(10, 10, bad).status().IsInvalidArgument());
  bad = BandingConstraints{};
  bad.min_rows = 5;
  bad.max_rows = 2;
  EXPECT_TRUE(RecommendBanding(10, 10, bad).status().IsInvalidArgument());
}

TEST(TuningTest, ThresholdAndBoundAreConsistent) {
  const auto recommendation = RecommendBanding(100, 20).ValueOrDie();
  EXPECT_DOUBLE_EQ(recommendation.threshold_similarity,
                   ThresholdSimilarity(recommendation.params));
  EXPECT_DOUBLE_EQ(recommendation.error_bound,
                   AssignmentErrorBound(100, recommendation.params, 20));
}

// ------------------------------------------------------------ slicing --

CategoricalDataset SliceSource() {
  ConjunctiveDataOptions options;
  options.num_items = 100;
  options.num_attributes = 6;
  options.num_clusters = 10;
  options.domain_size = 20;
  options.seed = 3;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

TEST(SlicingTest, SlicePreservesRowsAndLabels) {
  const auto source = SliceSource();
  const auto slice = SliceDataset(source, 10, 25).ValueOrDie();
  EXPECT_EQ(slice.num_items(), 15u);
  EXPECT_EQ(slice.num_attributes(), source.num_attributes());
  EXPECT_EQ(slice.num_codes(), source.num_codes());
  for (uint32_t i = 0; i < 15; ++i) {
    EXPECT_EQ(MismatchDistance(slice.Row(i), source.Row(10 + i)), 0u);
    EXPECT_EQ(slice.labels()[i], source.labels()[10 + i]);
  }
}

TEST(SlicingTest, SliceValidatesRange) {
  const auto source = SliceSource();
  EXPECT_TRUE(SliceDataset(source, 50, 40).status().IsOutOfRange());
  EXPECT_TRUE(SliceDataset(source, 0, 101).status().IsOutOfRange());
  EXPECT_TRUE(SliceDataset(source, 5, 5).status().IsInvalidArgument());
}

TEST(SlicingTest, SampleIsSubsetWithoutDuplicates) {
  const auto source = SliceSource();
  const auto sample = SampleDataset(source, 30, 7).ValueOrDie();
  EXPECT_EQ(sample.num_items(), 30u);
  // Every sampled row must exist in the source (rows are distinct enough
  // under this generator to use exact row matching).
  for (uint32_t i = 0; i < sample.num_items(); ++i) {
    bool found = false;
    for (uint32_t j = 0; j < source.num_items() && !found; ++j) {
      found = MismatchDistance(sample.Row(i), source.Row(j)) == 0 &&
              sample.labels()[i] == source.labels()[j];
    }
    EXPECT_TRUE(found) << "sampled row " << i << " not in source";
  }
}

TEST(SlicingTest, SampleValidates) {
  const auto source = SliceSource();
  EXPECT_TRUE(SampleDataset(source, 0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SampleDataset(source, 101, 1).status().IsOutOfRange());
}

TEST(SlicingTest, ConcatRoundTripsSlices) {
  const auto source = SliceSource();
  const auto head = SliceDataset(source, 0, 40).ValueOrDie();
  const auto tail = SliceDataset(source, 40, 100).ValueOrDie();
  const auto joined = ConcatDatasets(head, tail).ValueOrDie();
  ASSERT_EQ(joined.num_items(), source.num_items());
  for (uint32_t i = 0; i < source.num_items(); ++i) {
    EXPECT_EQ(MismatchDistance(joined.Row(i), source.Row(i)), 0u);
    EXPECT_EQ(joined.labels()[i], source.labels()[i]);
  }
}

TEST(SlicingTest, ConcatRejectsMismatchedShapes) {
  const auto source = SliceSource();
  ConjunctiveDataOptions other_options;
  other_options.num_items = 10;
  other_options.num_attributes = 4;  // different m
  other_options.num_clusters = 2;
  other_options.domain_size = 20;
  const auto other =
      GenerateConjunctiveRuleData(other_options).ValueOrDie();
  EXPECT_TRUE(ConcatDatasets(source, other).status().IsInvalidArgument());
}

TEST(SlicingTest, SlicePreservesPresenceSemanticsAndDictionary) {
  CsvOptions csv;
  csv.absent_values = {"0"};
  const auto source = ParseCategoricalCsv(
                          "w1,w2,label\n"
                          "1,0,0\n"
                          "0,1,1\n"
                          "1,1,0\n",
                          csv)
                          .ValueOrDie();
  const auto slice = SliceDataset(source, 1, 3).ValueOrDie();
  EXPECT_TRUE(slice.has_absence_semantics());
  ASSERT_NE(slice.interner(), nullptr);
  EXPECT_EQ(slice.interner(), source.interner());  // shared, not copied
  std::vector<uint32_t> tokens;
  EXPECT_EQ(slice.PresentTokens(0, &tokens), 1u);  // row "0,1"
  EXPECT_EQ(slice.ValueToString(0, 1), "w2=1");
}

// ------------------------------------------------- dynamic banded index --

TEST(DynamicIndexTest, AgreesWithStaticIndexOnSameSignatures) {
  const BandingParams params{6, 3};
  const MinHasher hasher(params.num_hashes(), 5);
  std::vector<std::vector<uint32_t>> sets;
  Rng rng(7);
  for (uint32_t i = 0; i < 200; ++i) {
    std::vector<uint32_t> set;
    for (int t = 0; t < 10; ++t) {
      set.push_back(static_cast<uint32_t>(rng.Below(400)));
    }
    sets.push_back(std::move(set));
  }
  std::vector<uint64_t> all(sets.size() * params.num_hashes());
  DynamicBandedIndex dynamic(params);
  for (size_t i = 0; i < sets.size(); ++i) {
    hasher.ComputeSignature(sets[i], all.data() + i * params.num_hashes());
    dynamic.Insert({all.data() + i * params.num_hashes(),
                    params.num_hashes()});
  }
  const BandedIndex fixed(all, static_cast<uint32_t>(sets.size()), params);

  // Querying both indexes with each signature yields identical candidate
  // multisets.
  for (size_t i = 0; i < sets.size(); i += 13) {
    std::multiset<uint32_t> from_static, from_dynamic;
    const std::span<const uint64_t> signature{
        all.data() + i * params.num_hashes(), params.num_hashes()};
    fixed.VisitCandidatesOfSignature(
        signature, [&](uint32_t item) { from_static.insert(item); });
    dynamic.VisitCandidatesOfSignature(
        signature, [&](uint32_t item) { from_dynamic.insert(item); });
    EXPECT_EQ(from_static, from_dynamic) << "item " << i;
  }
}

TEST(DynamicIndexTest, InsertBatchMatchesSequentialInserts) {
  // Bulk warm-up loading must produce byte-for-byte the same bucket
  // structure as one-at-a-time inserts over the same signature matrix.
  const BandingParams params{6, 3};
  const MinHasher hasher(params.num_hashes(), 17);
  const uint32_t n = 120;
  std::vector<uint64_t> all(static_cast<size_t>(n) * params.num_hashes());
  Rng rng(23);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<uint32_t> tokens;
    for (uint32_t t = 0; t < 8; ++t) {
      tokens.push_back(static_cast<uint32_t>(rng.Below(40)));
    }
    hasher.ComputeSignature(tokens, all.data() + i * params.num_hashes());
  }

  DynamicBandedIndex sequential(params), bulk(params);
  for (uint32_t i = 0; i < n; ++i) {
    sequential.Insert({all.data() + i * params.num_hashes(),
                       params.num_hashes()});
  }
  bulk.InsertBatch(all, n);
  ASSERT_EQ(bulk.num_items(), n);

  for (uint32_t i = 0; i < n; ++i) {
    const std::span<const uint64_t> signature{
        all.data() + i * params.num_hashes(), params.num_hashes()};
    std::vector<uint32_t> from_sequential, from_bulk;
    sequential.VisitCandidatesOfSignature(
        signature, [&](uint32_t item) { from_sequential.push_back(item); });
    bulk.VisitCandidatesOfSignature(
        signature, [&](uint32_t item) { from_bulk.push_back(item); });
    // Order matters too: the streaming apply phase relies on identical
    // chain walks, not just identical sets.
    EXPECT_EQ(from_sequential, from_bulk) << "item " << i;
  }
}

TEST(DynamicIndexTest, InsertDetectingRecentFlagsNewItemsOnly) {
  const BandingParams params{2, 2};
  DynamicBandedIndex index(params);
  const std::vector<uint64_t> sig_a(params.num_hashes(), 42);
  const std::vector<uint64_t> sig_b(params.num_hashes(), 99);
  index.Insert(sig_a);  // id 0: the "frozen" prefix

  bool saw_recent = true;
  // id 1: its buckets hold only item 0 < min_item -> not recent.
  EXPECT_EQ(index.InsertDetectingRecent(sig_a, 1, &saw_recent), 1u);
  EXPECT_FALSE(saw_recent);
  // id 2: bucket head is now item 1 >= min_item -> recent.
  EXPECT_EQ(index.InsertDetectingRecent(sig_a, 1, &saw_recent), 2u);
  EXPECT_TRUE(saw_recent);
  // A signature colliding with nothing is never recent.
  EXPECT_EQ(index.InsertDetectingRecent(sig_b, 1, &saw_recent), 3u);
  EXPECT_FALSE(saw_recent);
}

TEST(DynamicIndexTest, InsertAssignsSequentialIds) {
  const BandingParams params{2, 2};
  DynamicBandedIndex index(params);
  const std::vector<uint64_t> sig(params.num_hashes(), 42);
  EXPECT_EQ(index.Insert(sig), 0u);
  EXPECT_EQ(index.Insert(sig), 1u);
  EXPECT_EQ(index.num_items(), 2u);
}

TEST(DynamicIndexTest, LaterInsertsBecomeVisible) {
  const BandingParams params{4, 2};
  const MinHasher hasher(params.num_hashes(), 9);
  DynamicBandedIndex index(params);
  const std::vector<uint32_t> tokens{1, 2, 3, 4};
  const auto signature = hasher.ComputeSignature(tokens);

  size_t count = 0;
  index.VisitCandidatesOfSignature(signature, [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 0u);  // empty index

  index.Insert(signature);
  index.Insert(signature);
  std::set<uint32_t> seen;
  index.VisitCandidatesOfSignature(signature,
                                   [&](uint32_t item) { seen.insert(item); });
  EXPECT_EQ(seen, (std::set<uint32_t>{0, 1}));
  EXPECT_GT(index.MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace lshclust
