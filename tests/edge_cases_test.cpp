// Edge-case and failure-injection tests across the stack: boundary
// dimensions, degenerate datasets, distance-kernel block boundaries,
// zero-iteration runs, empty-signature semantics, CRLF input, and other
// conditions production data will eventually produce.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "clustering/kmodes.h"
#include "core/canopy_shortlist_index.h"
#include "core/mh_kmodes.h"
#include "data/csv.h"
#include "datagen/conjunctive_generator.h"
#include "hashing/minhash.h"
#include "lsh/banded_index.h"

namespace lshclust {
namespace {

// ----------------------------------------- distance kernel boundaries --

TEST(EdgeCaseTest, KernelBlockBoundaryWidths) {
  // The bounded kernel processes 32-wide blocks; verify exactness at and
  // around every boundary the implementation has.
  Rng rng(1);
  for (const uint32_t m : {1u, 2u, 31u, 32u, 33u, 63u, 64u, 65u, 95u, 96u,
                           97u, 100u, 128u}) {
    std::vector<uint32_t> a(m), b(m);
    for (uint32_t j = 0; j < m; ++j) {
      a[j] = static_cast<uint32_t>(rng.Below(3));
      b[j] = rng.Bernoulli(0.5) ? a[j] : a[j] + 7;
    }
    const uint32_t exact = MismatchDistance(a, b);
    EXPECT_EQ(BoundedMismatchDistance(a.data(), b.data(), m, m + 1), exact)
        << "m=" << m;
    for (const uint32_t bound : {1u, exact, exact + 1, m + 5}) {
      if (bound == 0) continue;
      const uint32_t bounded =
          BoundedMismatchDistance(a.data(), b.data(), m, bound);
      if (exact < bound) {
        EXPECT_EQ(bounded, exact) << "m=" << m << " bound=" << bound;
      } else {
        EXPECT_GE(bounded, bound) << "m=" << m << " bound=" << bound;
      }
    }
  }
}

// ----------------------------------------------- degenerate clusterings --

TEST(EdgeCaseTest, SingleAttributeDataset) {
  auto dataset = CategoricalDataset::FromCodes(
                     6, 1, 3, {0, 0, 1, 1, 2, 2}, {0, 0, 1, 1, 2, 2})
                     .ValueOrDie();
  EngineOptions options;
  options.num_clusters = 3;
  options.initial_seeds = {0, 2, 4};
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 0.0);
}

TEST(EdgeCaseTest, AllItemsIdentical) {
  auto dataset = CategoricalDataset::FromCodes(
                     10, 4, 8, std::vector<uint32_t>(40, 5))
                     .ValueOrDie();
  EngineOptions options;
  options.num_clusters = 3;
  options.seed = 3;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_cost, 0.0);
  // Ties keep items where they start, but the first iteration must not
  // thrash: all items end in one cluster (the first one scanned wins the
  // strict-improvement test from identical seeds).
  const std::set<uint32_t> clusters(result.assignment.begin(),
                                    result.assignment.end());
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(EdgeCaseTest, ZeroIterationBudgetYieldsInitialAssignmentOnly) {
  ConjunctiveDataOptions data;
  data.num_items = 100;
  data.num_attributes = 8;
  data.num_clusters = 5;
  data.domain_size = 20;
  data.seed = 5;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();
  EngineOptions options;
  options.num_clusters = 5;
  options.max_iterations = 0;
  const auto result = RunKModes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.iterations.empty());
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.assignment.size(), 100u);  // initial pass still ran
  for (const uint32_t cluster : result.assignment) EXPECT_LT(cluster, 5u);
}

TEST(EdgeCaseTest, MHKModesWithMoreBandsThanNeeded) {
  // Banding wider than the item count still works (buckets mostly
  // singletons).
  ConjunctiveDataOptions data;
  data.num_items = 40;
  data.num_attributes = 8;
  data.num_clusters = 4;
  data.domain_size = 30;
  data.seed = 7;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();
  MHKModesOptions options;
  options.engine.num_clusters = 4;
  options.index.banding = {64, 1};
  const auto run = RunMHKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(run.result.assignment.size(), 40u);
}

// --------------------------------------------- empty-signature semantics --

TEST(EdgeCaseTest, AllAbsentItemsCollideWithEachOtherOnly) {
  // Items with no present feature get the sentinel signature: they bucket
  // together (they are identical as sets) but never with non-empty items.
  CategoricalDatasetBuilder builder({"w1", "w2"});
  builder.MarkAbsentValue("0");
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"0", "0"}).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"0", "0"}).ok());
  ASSERT_TRUE(builder.AddRow(std::vector<std::string>{"1", "1"}).ok());
  const auto dataset = std::move(builder).Build();

  const BandingParams params{4, 2};
  const MinHasher hasher(params.num_hashes(), 3);
  std::vector<uint64_t> signatures(3 * params.num_hashes());
  std::vector<uint32_t> tokens;
  for (uint32_t item = 0; item < 3; ++item) {
    dataset.PresentTokens(item, &tokens);
    hasher.ComputeSignature(tokens,
                            signatures.data() + item * params.num_hashes());
  }
  const BandedIndex index(signatures, 3, params);
  std::set<uint32_t> candidates_of_empty;
  index.VisitCandidates(0, [&](uint32_t other) {
    candidates_of_empty.insert(other);
  });
  EXPECT_TRUE(candidates_of_empty.count(1));   // the other empty item
  EXPECT_FALSE(candidates_of_empty.count(2));  // never the non-empty one
}

TEST(EdgeCaseTest, MinHasherSingleTokenSet) {
  const MinHasher hasher(16, 9);
  const auto a = hasher.ComputeSignature(std::vector<uint32_t>{7});
  const auto b = hasher.ComputeSignature(std::vector<uint32_t>{7});
  const auto c = hasher.ComputeSignature(std::vector<uint32_t>{8});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const uint64_t component : a) {
    EXPECT_NE(component, kEmptySetSignature);
  }
}

// --------------------------------------------------------- input formats --

TEST(EdgeCaseTest, CsvWithCrlfLineEndings) {
  const auto dataset =
      ParseCategoricalCsv("a,b,label\r\nx,y,0\r\nz,w,1\r\n").ValueOrDie();
  EXPECT_EQ(dataset.num_items(), 2u);
  EXPECT_EQ(dataset.ValueToString(0, 0), "a=x");
  EXPECT_EQ(dataset.labels(), (std::vector<uint32_t>{0, 1}));
}

TEST(EdgeCaseTest, CsvSingleColumn) {
  const auto dataset = ParseCategoricalCsv("only\nv1\nv2\nv1\n").ValueOrDie();
  EXPECT_EQ(dataset.num_items(), 3u);
  EXPECT_EQ(dataset.num_attributes(), 1u);
  EXPECT_EQ(dataset.Row(0)[0], dataset.Row(2)[0]);
}

// ------------------------------------------------------ status plumbing --

TEST(EdgeCaseTest, StatusSelfAssignment) {
  Status status = Status::IOError("original");
  status = *&status;  // self-assignment must be harmless
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(status.message(), "original");
}

TEST(EdgeCaseTest, ResultOfStatusLikePayload) {
  // A Result can carry any movable payload, including vectors of results.
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

// ----------------------------------------------------- shortlist corners --

TEST(EdgeCaseTest, ProviderSeesInPlaceAssignmentUpdatesWithinAPass) {
  // The engine updates `assignment` in place, so an item later in the scan
  // dereferences the *new* cluster of an item moved earlier in the same
  // pass (exactly the paper's "update the cluster reference" semantics).
  auto dataset = CategoricalDataset::FromCodes(
                     3, 2, 30,
                     {1, 2,     // item 0
                      1, 2,     // item 1 (identical to 0)
                      10, 11})  // item 2 (far away)
                     .ValueOrDie();
  ShortlistIndexOptions options;
  options.banding = {4, 2};
  ClusterShortlistProvider provider(options, 3);
  ASSERT_TRUE(provider.Prepare(dataset).ok());

  std::vector<uint32_t> assignment{0, 1, 2};
  std::vector<uint32_t> shortlist;
  provider.GetCandidates(1, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 0u),
            shortlist.end());
  assignment[0] = 2;  // item 0 moves
  provider.GetCandidates(1, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 2u),
            shortlist.end());
  EXPECT_EQ(std::count(shortlist.begin(), shortlist.end(), 0u), 0);
}

// A provider that returns only the current cluster (namespace scope:
// local classes cannot carry the static kExhaustive member in C++20).
struct FrozenProvider {
  static constexpr bool kExhaustive = false;
  Status Prepare(const CategoricalDataset&) { return Status::OK(); }
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    out->assign(1, assignment[item]);
  }
};

TEST(EdgeCaseTest, EngineSurvivesProviderReturningOnlyCurrentCluster) {
  // Freezing candidates at the current cluster means the engine must
  // converge immediately without errors.
  ConjunctiveDataOptions data;
  data.num_items = 60;
  data.num_attributes = 6;
  data.num_clusters = 4;
  data.domain_size = 10;
  data.seed = 9;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();
  EngineOptions options;
  options.num_clusters = 4;
  FrozenProvider provider;
  const auto result = RunEngine(dataset, options, provider).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations.size(), 1u);  // zero moves immediately
  EXPECT_DOUBLE_EQ(result.iterations[0].mean_shortlist, 1.0);
}

// ----------------------------------------------- cancellable Prepare --

TEST(EdgeCaseTest, CancelledPrepareLeavesProviderIndexless) {
  ConjunctiveDataOptions data;
  data.num_items = 600;  // > 2 signing batches of kSignatureChunkSize
  data.num_attributes = 8;
  data.num_clusters = 4;
  data.domain_size = 20;
  data.seed = 11;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();
  ShortlistIndexOptions options;
  options.banding = {4, 2};

  // Cancel at the very first signing batch: nothing was built, nothing
  // is counted.
  {
    ClusterShortlistProvider provider(options, 4);
    const std::function<bool()> now = [] { return true; };
    const Status status = provider.Prepare(dataset, nullptr, &now);
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(provider.index(), nullptr);
    EXPECT_EQ(provider.dataset_sign_passes(), 0u);

    // The provider is reusable: a later un-cancelled Prepare succeeds.
    ASSERT_TRUE(provider.Prepare(dataset).ok());
    EXPECT_NE(provider.index(), nullptr);
    EXPECT_EQ(provider.dataset_sign_passes(), 1u);
  }

  // Cancel *between* the signing and index-build phases (the hook first
  // answers true after every signing batch passed): the signing pass
  // completed — and is counted — but no index may be installed from it.
  {
    ClusterShortlistProvider provider(options, 4);
    const int signing_batches = static_cast<int>(
        (data.num_items + kSignatureChunkSize - 1) / kSignatureChunkSize);
    int polls = 0;
    const std::function<bool()> after_signing = [&] {
      return ++polls > signing_batches;
    };
    const Status status = provider.Prepare(dataset, nullptr, &after_signing);
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(provider.index(), nullptr);
    EXPECT_EQ(provider.dataset_sign_passes(), 1u);
  }

  // A cancelled re-Prepare drops the previously installed index instead
  // of leaving a stale one behind.
  {
    ClusterShortlistProvider provider(options, 4);
    ASSERT_TRUE(provider.Prepare(dataset).ok());
    ASSERT_NE(provider.index(), nullptr);
    const std::function<bool()> now = [] { return true; };
    EXPECT_EQ(provider.Prepare(dataset, nullptr, &now).code(),
              StatusCode::kCancelled);
    EXPECT_EQ(provider.index(), nullptr);
  }
}

TEST(EdgeCaseTest, CancelledCanopyPrepareLeavesProviderCoverless) {
  ConjunctiveDataOptions data;
  data.num_items = 80;
  data.num_attributes = 8;
  data.num_clusters = 4;
  data.domain_size = 20;
  data.seed = 13;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();
  CanopyOptions options;
  options.cheap_attributes = 4;

  CanopyShortlistProvider provider(options, 4);
  const std::function<bool()> now = [] { return true; };
  EXPECT_EQ(provider.Prepare(dataset, nullptr, &now).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(provider.index(), nullptr);
  ASSERT_TRUE(provider.Prepare(dataset).ok());
  EXPECT_NE(provider.index(), nullptr);
}

TEST(EdgeCaseTest, BandedIndexOneBandOneRow) {
  // 1b1r: the coarsest banding — one bucket per distinct first component.
  const MinHasher hasher(1, 11);
  std::vector<std::vector<uint32_t>> sets{{1, 2, 3}, {1, 2, 3}, {9, 10, 11}};
  std::vector<uint64_t> signatures;
  for (const auto& set : sets) {
    const auto signature = hasher.ComputeSignature(set);
    signatures.push_back(signature[0]);
  }
  const BandedIndex index(signatures, 3, BandingParams{1, 1});
  std::set<uint32_t> candidates;
  index.VisitCandidates(0, [&](uint32_t other) { candidates.insert(other); });
  EXPECT_TRUE(candidates.count(1));
}

}  // namespace
}  // namespace lshclust
