// Parameterized property sweeps over the whole stack: invariants that must
// hold for every configuration of (n, m, k, banding, seed).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clustering/kmodes.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

struct Shape {
  uint32_t items;
  uint32_t attributes;
  uint32_t clusters;
  uint32_t domain;
  uint32_t bands;
  uint32_t rows;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const Shape& s) {
    return os << "n" << s.items << "_m" << s.attributes << "_k" << s.clusters
              << "_d" << s.domain << "_" << s.bands << "b" << s.rows << "r_s"
              << s.seed;
  }
};

CategoricalDataset MakeData(const Shape& shape) {
  ConjunctiveDataOptions options;
  options.num_items = shape.items;
  options.num_attributes = shape.attributes;
  options.num_clusters = shape.clusters;
  options.domain_size = shape.domain;
  options.seed = shape.seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

class ClusteringPropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ClusteringPropertyTest, InvariantsHoldForBothAlgorithms) {
  const Shape shape = GetParam();
  const auto dataset = MakeData(shape);

  EngineOptions engine;
  engine.num_clusters = shape.clusters;
  engine.seed = shape.seed * 31 + 7;
  engine.max_iterations = 30;

  const auto baseline = RunKModes(dataset, engine).ValueOrDie();

  MHKModesOptions mh_options;
  mh_options.engine = engine;
  mh_options.index.banding = {shape.bands, shape.rows};
  const auto mh = RunMHKModes(dataset, mh_options).ValueOrDie();

  for (const ClusteringResult* result :
       {&baseline, &mh.result}) {
    // 1. Every item is assigned a valid cluster.
    ASSERT_EQ(result->assignment.size(), dataset.num_items());
    for (const uint32_t cluster : result->assignment) {
      ASSERT_LT(cluster, shape.clusters);
    }
    // 2. Cost is monotone non-increasing across iterations.
    for (size_t i = 1; i < result->iterations.size(); ++i) {
      EXPECT_LE(result->iterations[i].cost, result->iterations[i - 1].cost)
          << "iteration " << i;
    }
    // 3. Convergence implies a final zero-move iteration.
    if (result->converged) {
      EXPECT_EQ(result->iterations.back().moves, 0u);
    }
    // 4. Iteration numbering is 1..T.
    for (size_t i = 0; i < result->iterations.size(); ++i) {
      EXPECT_EQ(result->iterations[i].iteration, i + 1);
    }
    // 5. Phase timings are non-negative and total covers the phases.
    EXPECT_GE(result->init_seconds, 0.0);
    EXPECT_GE(result->initial_assign_seconds, 0.0);
    EXPECT_GE(result->index_build_seconds, 0.0);
    EXPECT_GE(result->total_seconds,
              result->init_seconds + result->initial_assign_seconds +
                  result->index_build_seconds + result->RefinementSeconds() -
                  1e-6);
  }

  // 6. Baseline scans k clusters per item; MH must not exceed it.
  for (const auto& iteration : baseline.iterations) {
    EXPECT_DOUBLE_EQ(iteration.mean_shortlist,
                     static_cast<double>(shape.clusters));
  }
  for (const auto& iteration : mh.result.iterations) {
    EXPECT_GE(iteration.mean_shortlist, 1.0);  // current cluster always in
    EXPECT_LE(iteration.mean_shortlist,
              static_cast<double>(shape.clusters));
  }

  // 7. Determinism: re-running either algorithm reproduces it bit-for-bit.
  const auto baseline2 = RunKModes(dataset, engine).ValueOrDie();
  EXPECT_EQ(baseline.assignment, baseline2.assignment);
  const auto mh2 = RunMHKModes(dataset, mh_options).ValueOrDie();
  EXPECT_EQ(mh.result.assignment, mh2.result.assignment);

  // 8. Purity is a valid probability for both.
  if (dataset.has_labels()) {
    const double purity_baseline =
        ComputePurity(baseline.assignment, dataset.labels()).ValueOrDie();
    const double purity_mh =
        ComputePurity(mh.result.assignment, dataset.labels()).ValueOrDie();
    EXPECT_GE(purity_baseline, 0.0);
    EXPECT_LE(purity_baseline, 1.0);
    EXPECT_GE(purity_mh, 0.0);
    EXPECT_LE(purity_mh, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusteringPropertyTest,
    ::testing::Values(
        // Vary items.
        Shape{150, 10, 10, 100, 10, 2, 1},
        Shape{600, 10, 10, 100, 10, 2, 2},
        // Vary clusters (the paper's main axis).
        Shape{400, 12, 8, 200, 20, 5, 3},
        Shape{400, 12, 80, 200, 20, 5, 4},
        // Vary attributes.
        Shape{300, 6, 15, 150, 20, 2, 5},
        Shape{300, 48, 15, 150, 20, 2, 6},
        // Vary banding extremes.
        Shape{300, 16, 20, 300, 1, 1, 7},
        Shape{300, 16, 20, 300, 50, 5, 8},
        Shape{300, 16, 20, 300, 4, 10, 9},
        // Small domain: heavy value collisions.
        Shape{250, 12, 12, 3, 10, 2, 10},
        // k = 1 and k = n edge shapes.
        Shape{100, 8, 1, 50, 8, 2, 11},
        Shape{60, 8, 60, 50, 8, 2, 12}));

// The error-bound direction of the framework: raising b (with r fixed)
// cannot make shortlists smaller on the same data/seeds.
class BandMonotonicityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BandMonotonicityTest, MoreBandsGrowShortlists) {
  const uint32_t rows = GetParam();
  ConjunctiveDataOptions data;
  data.num_items = 400;
  data.num_attributes = 16;
  data.num_clusters = 40;
  data.domain_size = 30;  // noisy enough for real collisions
  data.seed = 13;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  double previous_mean = 0;
  for (const uint32_t bands : {1u, 5u, 20u, 50u}) {
    MHKModesOptions options;
    options.engine.num_clusters = 40;
    options.engine.seed = 17;
    options.engine.max_iterations = 3;
    options.index.banding = {bands, rows};
    const auto run = RunMHKModes(dataset, options).ValueOrDie();
    double mean = 0;
    for (const auto& it : run.result.iterations) mean += it.mean_shortlist;
    mean /= static_cast<double>(run.result.iterations.size());
    EXPECT_GE(mean + 1e-9, previous_mean * 0.8)
        << bands << " bands, " << rows << " rows";
    previous_mean = std::max(previous_mean, mean);
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, BandMonotonicityTest,
                         ::testing::Values(1u, 2u, 5u));

// More rows (b fixed) make banding stricter: shortlists shrink.
TEST(BandMonotonicityTest, MoreRowsShrinkShortlists) {
  ConjunctiveDataOptions data;
  data.num_items = 400;
  data.num_attributes = 16;
  data.num_clusters = 40;
  data.domain_size = 30;
  data.seed = 19;
  const auto dataset = GenerateConjunctiveRuleData(data).ValueOrDie();

  double loose_mean = 0, strict_mean = 0;
  for (auto [rows, mean_out] :
       {std::pair<uint32_t, double*>{1, &loose_mean},
        std::pair<uint32_t, double*>{8, &strict_mean}}) {
    MHKModesOptions options;
    options.engine.num_clusters = 40;
    options.engine.seed = 23;
    options.engine.max_iterations = 3;
    options.index.banding = {10, rows};
    const auto run = RunMHKModes(dataset, options).ValueOrDie();
    double mean = 0;
    for (const auto& it : run.result.iterations) mean += it.mean_shortlist;
    *mean_out = mean / static_cast<double>(run.result.iterations.size());
  }
  EXPECT_LE(strict_mean, loose_mean);
}

}  // namespace
}  // namespace lshclust
