// Tests for fuzzy K-Modes (clustering/fuzzy_kmodes.h).

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/fuzzy_kmodes.h"
#include "clustering/kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

CategoricalDataset MakeData(uint32_t n, uint32_t k, uint64_t seed,
                            uint32_t domain = 50,
                            double min_rule = 0.6, double max_rule = 0.9) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = 10;
  options.num_clusters = k;
  options.domain_size = domain;
  options.min_rule_fraction = min_rule;
  options.max_rule_fraction = max_rule;
  options.seed = seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

TEST(FuzzyKModesTest, MembershipsAreDistributions) {
  const auto dataset = MakeData(200, 8, 3);
  FuzzyKModesOptions options;
  options.num_clusters = 8;
  options.alpha = 1.6;
  options.seed = 5;
  const auto result = RunFuzzyKModes(dataset, options).ValueOrDie();
  ASSERT_EQ(result.memberships.size(), 200u * 8u);
  for (uint32_t item = 0; item < 200; ++item) {
    double total = 0;
    for (uint32_t cluster = 0; cluster < 8; ++cluster) {
      const double membership = result.Membership(item, cluster);
      EXPECT_GE(membership, 0.0);
      EXPECT_LE(membership, 1.0);
      total += membership;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "item " << item;
  }
}

TEST(FuzzyKModesTest, ObjectiveIsNonIncreasing) {
  const auto dataset = MakeData(300, 12, 7, /*domain=*/6);  // noisy
  FuzzyKModesOptions options;
  options.num_clusters = 12;
  options.alpha = 1.4;
  options.seed = 9;
  const auto result = RunFuzzyKModes(dataset, options).ValueOrDie();
  ASSERT_GE(result.objective.size(), 2u);
  for (size_t i = 1; i < result.objective.size(); ++i) {
    EXPECT_LE(result.objective[i], result.objective[i - 1] + 1e-9)
        << "iteration " << i;
  }
}

TEST(FuzzyKModesTest, RecoversSeparatedClusters) {
  const auto dataset = MakeData(160, 4, 11, /*domain=*/5000, 1.0, 1.0);
  FuzzyKModesOptions options;
  options.num_clusters = 4;
  options.alpha = 1.5;
  options.initial_seeds = {0, 1, 2, 3};
  const auto result = RunFuzzyKModes(dataset, options).ValueOrDie();
  const double purity =
      ComputePurity(result.hard_assignment, dataset.labels()).ValueOrDie();
  EXPECT_DOUBLE_EQ(purity, 1.0);
  // Items identical to a mode carry membership 1 on it.
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    const uint32_t cluster = result.hard_assignment[item];
    EXPECT_NEAR(result.Membership(item, cluster), 1.0, 1e-9);
  }
}

TEST(FuzzyKModesTest, SmallAlphaApproachesHardKModes) {
  const auto dataset = MakeData(250, 10, 13);
  FuzzyKModesOptions fuzzy;
  fuzzy.num_clusters = 10;
  fuzzy.alpha = 1.05;  // nearly hard
  fuzzy.seed = 15;
  const auto soft = RunFuzzyKModes(dataset, fuzzy).ValueOrDie();

  // Memberships concentrate: the top cluster holds almost everything.
  double mean_top = 0;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    mean_top += soft.Membership(item, soft.hard_assignment[item]);
  }
  mean_top /= dataset.num_items();
  EXPECT_GT(mean_top, 0.95);
}

TEST(FuzzyKModesTest, LargeAlphaBlursMemberships) {
  const auto dataset = MakeData(250, 10, 17);
  FuzzyKModesOptions options;
  options.num_clusters = 10;
  options.alpha = 8.0;
  options.seed = 19;
  const auto result = RunFuzzyKModes(dataset, options).ValueOrDie();
  // With strong blurring the max membership sits well below 1 for items
  // that match no mode exactly.
  double mean_top = 0;
  uint32_t counted = 0;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    const double top = result.Membership(item, result.hard_assignment[item]);
    if (top < 1.0 - 1e-9) {  // skip exact-match items
      mean_top += top;
      ++counted;
    }
  }
  ASSERT_GT(counted, 0u);
  EXPECT_LT(mean_top / counted, 0.6);
}

TEST(FuzzyKModesTest, ValidatesOptions) {
  const auto dataset = MakeData(50, 5, 21);
  FuzzyKModesOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(RunFuzzyKModes(dataset, options).status().IsInvalidArgument());
  options.num_clusters = 5;
  options.alpha = 1.0;  // must be > 1
  EXPECT_TRUE(RunFuzzyKModes(dataset, options).status().IsInvalidArgument());
  options.alpha = 1.5;
  options.initial_seeds = {1, 2, 3};
  EXPECT_TRUE(RunFuzzyKModes(dataset, options).status().IsInvalidArgument());
}

TEST(FuzzyKModesTest, DeterministicPerSeed) {
  const auto dataset = MakeData(150, 6, 23);
  FuzzyKModesOptions options;
  options.num_clusters = 6;
  options.seed = 25;
  const auto a = RunFuzzyKModes(dataset, options).ValueOrDie();
  const auto b = RunFuzzyKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(a.hard_assignment, b.hard_assignment);
  EXPECT_EQ(a.memberships, b.memberships);
}

}  // namespace
}  // namespace lshclust
