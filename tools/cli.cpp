#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "core/experiment.h"
#include "core/mh_kmodes.h"
#include "data/csv.h"
#include "data/serialize.h"
#include "datagen/conjunctive_generator.h"
#include "lsh/tuning.h"
#include "metrics/metrics.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace lshclust {

namespace {

bool IsBinaryPath(std::string_view path) {
  return path.size() >= 5 && path.substr(path.size() - 5) == ".lshc";
}

Result<CategoricalDataset> LoadDataset(const std::string& path) {
  if (IsBinaryPath(path)) return LoadDatasetBinary(path);
  return ReadCategoricalCsv(path);
}

Status SaveDataset(const CategoricalDataset& dataset,
                   const std::string& path) {
  if (IsBinaryPath(path)) return SaveDatasetBinary(dataset, path);
  return WriteCategoricalCsv(dataset, path);
}

Status WriteAssignmentCsv(const std::vector<uint32_t>& assignment,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "item,cluster\n";
  for (size_t item = 0; item < assignment.size(); ++item) {
    out << item << ',' << assignment[item] << '\n';
  }
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<uint32_t>> ReadAssignmentCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "item,cluster") {
    return Status::InvalidArgument(
        "'" + path + "' is not an assignment file (bad header)");
  }
  std::vector<uint32_t> assignment;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const auto fields = Split(Trim(line), ',');
    int64_t item = 0, cluster = 0;
    if (fields.size() != 2 || !ParseInt64(fields[0], &item) ||
        !ParseInt64(fields[1], &cluster) ||
        item != static_cast<int64_t>(assignment.size()) || cluster < 0) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_number) +
                                     " is malformed");
    }
    assignment.push_back(static_cast<uint32_t>(cluster));
  }
  if (assignment.empty()) {
    return Status::InvalidArgument("'" + path + "' contains no assignments");
  }
  return assignment;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// ---------------------------------------------------------------- generate --

int CmdGenerate(int argc, char** argv) {
  FlagSet flags("lshclust generate");
  int64_t items = 10000, attributes = 100, clusters = 1000;
  int64_t domain = 40000, seed = 1;
  std::string output = "dataset.lshc";
  flags.AddInt64("items", &items, "items to generate");
  flags.AddInt64("attributes", &attributes, "attributes per item");
  flags.AddInt64("clusters", &clusters, "ground-truth clusters");
  flags.AddInt64("domain", &domain, "category values per attribute");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddString("output", &output, "output path (.lshc binary or .csv)");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return Fail(parsed);

  ConjunctiveDataOptions options;
  options.num_items = static_cast<uint32_t>(items);
  options.num_attributes = static_cast<uint32_t>(attributes);
  options.num_clusters = static_cast<uint32_t>(clusters);
  options.domain_size = static_cast<uint32_t>(domain);
  options.seed = static_cast<uint64_t>(seed);
  auto dataset = GenerateConjunctiveRuleData(options);
  if (!dataset.ok()) return Fail(dataset.status());
  // CSV output needs string values; binary stores raw codes directly.
  if (!IsBinaryPath(output) && dataset->interner() == nullptr) {
    return Fail(Status::InvalidArgument(
        "the conjunctive generator emits raw codes; use a .lshc output "
        "path"));
  }
  const Status saved = SaveDataset(*dataset, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %u items x %u attributes (%u clusters) to %s\n",
              dataset->num_items(), dataset->num_attributes(),
              options.num_clusters, output.c_str());
  return 0;
}

// ----------------------------------------------------------------- cluster --

int CmdCluster(int argc, char** argv) {
  FlagSet flags("lshclust cluster");
  std::string input, output = "assignment.csv", method = "mh-kmodes";
  int64_t k = 0, bands = 20, rows = 5, max_iterations = 100, seed = 42;
  flags.AddString("input", &input, "dataset path (.lshc or .csv)");
  flags.AddString("output", &output, "assignment CSV path");
  flags.AddString("method", &method, "kmodes | mh-kmodes");
  flags.AddInt64("k", &k, "number of clusters");
  flags.AddInt64("bands", &bands, "MinHash bands (mh-kmodes)");
  flags.AddInt64("rows", &rows, "rows per band (mh-kmodes)");
  flags.AddInt64("max-iters", &max_iterations, "iteration cap");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return Fail(parsed);
  if (input.empty() || k <= 0) {
    std::fprintf(stderr, "usage: lshclust cluster --input=<file> --k=<n> "
                         "[--method=mh-kmodes]\n");
    return 2;
  }

  auto dataset = LoadDataset(input);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("loaded %u items x %u attributes from %s\n",
              dataset->num_items(), dataset->num_attributes(),
              input.c_str());

  EngineOptions engine;
  engine.num_clusters = static_cast<uint32_t>(k);
  engine.max_iterations = static_cast<uint32_t>(max_iterations);
  engine.seed = static_cast<uint64_t>(seed);

  Result<ClusteringResult> result = Status::UnknownError("unset");
  if (method == "kmodes") {
    result = RunKModes(*dataset, engine);
  } else if (method == "mh-kmodes") {
    MHKModesOptions options;
    options.engine = engine;
    options.index.banding = {static_cast<uint32_t>(bands),
                             static_cast<uint32_t>(rows)};
    auto run = RunMHKModes(*dataset, options);
    if (run.ok()) {
      result = std::move(run->result);
    } else {
      result = run.status();
    }
  } else {
    std::fprintf(stderr, "unknown --method '%s' (kmodes | mh-kmodes)\n",
                 method.c_str());
    return 2;
  }
  if (!result.ok()) return Fail(result.status());

  std::printf("%s: %zu iterations (%s), cost %.0f, %.3fs total\n",
              method.c_str(), result->iterations.size(),
              result->converged ? "converged" : "iteration cap",
              result->final_cost, result->total_seconds);
  if (dataset->has_labels()) {
    auto purity = ComputePurity(result->assignment, dataset->labels());
    if (purity.ok()) std::printf("purity vs labels: %.4f\n", *purity);
  }
  const Status saved = WriteAssignmentCsv(result->assignment, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("assignment written to %s\n", output.c_str());
  return 0;
}

// ---------------------------------------------------------------- evaluate --

int CmdEvaluate(int argc, char** argv) {
  FlagSet flags("lshclust evaluate");
  std::string dataset_path, assignment_path;
  flags.AddString("dataset", &dataset_path, "labeled dataset path");
  flags.AddString("assignment", &assignment_path, "assignment CSV path");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return Fail(parsed);
  if (dataset_path.empty() || assignment_path.empty()) {
    std::fprintf(stderr, "usage: lshclust evaluate --dataset=<file> "
                         "--assignment=<file>\n");
    return 2;
  }

  auto dataset = LoadDataset(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  if (!dataset->has_labels()) {
    return Fail(Status::InvalidArgument("dataset carries no labels"));
  }
  auto assignment = ReadAssignmentCsv(assignment_path);
  if (!assignment.ok()) return Fail(assignment.status());
  if (assignment->size() != dataset->num_items()) {
    return Fail(Status::InvalidArgument(
        "assignment covers " + std::to_string(assignment->size()) +
        " items, dataset has " + std::to_string(dataset->num_items())));
  }

  auto table = ContingencyTable::Build(*assignment, dataset->labels());
  if (!table.ok()) return Fail(table.status());
  std::printf("items:   %llu\n",
              static_cast<unsigned long long>(table->total()));
  std::printf("purity:  %.4f\n", Purity(*table));
  std::printf("NMI:     %.4f\n", NormalizedMutualInformation(*table));
  std::printf("ARI:     %.4f\n", AdjustedRandIndex(*table));
  return 0;
}

// ----------------------------------------------------------------- inspect --

int CmdInspect(int argc, char** argv) {
  FlagSet flags("lshclust inspect");
  std::string input;
  int64_t cluster_size = 10;
  double max_error = 0.05;
  flags.AddString("input", &input, "dataset path (.lshc or .csv)");
  flags.AddInt64("cluster-size", &cluster_size,
                 "assumed minimum cluster size for banding advice");
  flags.AddDouble("max-error", &max_error,
                  "tolerated shortlist-miss probability");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return Fail(parsed);
  if (input.empty()) {
    std::fprintf(stderr, "usage: lshclust inspect --input=<file>\n");
    return 2;
  }

  auto dataset = LoadDataset(input);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("items:       %u\n", dataset->num_items());
  std::printf("attributes:  %u\n", dataset->num_attributes());
  std::printf("codes:       %u\n", dataset->num_codes());
  std::printf("labels:      %s\n", dataset->has_labels() ? "yes" : "no");
  std::printf("presence:    %s\n",
              dataset->has_absence_semantics() ? "sparse (absent values)"
                                               : "dense");
  if (dataset->has_labels()) {
    std::vector<bool> seen;
    for (const uint32_t label : dataset->labels()) {
      if (label >= seen.size()) seen.resize(label + 1, false);
      seen[label] = true;
    }
    size_t distinct = 0;
    for (const bool present : seen) distinct += present ? 1 : 0;
    std::printf("classes:     %zu\n", distinct);
  }

  BandingConstraints constraints;
  constraints.max_error = max_error;
  auto advice = RecommendBanding(dataset->num_attributes(),
                                 static_cast<uint32_t>(cluster_size),
                                 constraints);
  if (advice.ok()) {
    std::printf("suggested banding: %ub %ur (%u hashes, error bound "
                "%.4f, threshold similarity %.4f)\n",
                advice->params.bands, advice->params.rows,
                advice->num_hashes, advice->error_bound,
                advice->threshold_similarity);
  } else {
    std::printf("no banding within budget meets error %.3f\n", max_error);
  }
  return 0;
}

int Usage() {
  std::fputs(
      "usage: lshclust <command> [flags]\n"
      "commands:\n"
      "  generate   write a synthetic conjunctive-rule dataset\n"
      "  cluster    cluster a dataset with K-Modes or MH-K-Modes\n"
      "  evaluate   score an assignment against dataset labels\n"
      "  inspect    print dataset shape and banding advice\n"
      "run `lshclust <command> --help` for the command's flags\n",
      stderr);
  return 2;
}

}  // namespace

int RunCli(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];
  // Shift argv so each command's FlagSet sees its own flags.
  if (command == "generate") return CmdGenerate(argc - 1, argv + 1);
  if (command == "cluster") return CmdCluster(argc - 1, argv + 1);
  if (command == "evaluate") return CmdEvaluate(argc - 1, argv + 1);
  if (command == "inspect") return CmdInspect(argc - 1, argv + 1);
  return Usage();
}

}  // namespace lshclust
