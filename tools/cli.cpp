#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "api/clusterer.h"
#include "data/csv.h"
#include "data/mixed_dataset.h"
#include "data/serialize.h"
#include "datagen/conjunctive_generator.h"
#include "lsh/tuning.h"
#include "metrics/metrics.h"
#include "persist/model_io.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace lshclust {

namespace {

bool IsBinaryPath(std::string_view path) {
  return path.size() >= 5 && path.substr(path.size() - 5) == ".lshc";
}

Result<CategoricalDataset> LoadDataset(const std::string& path) {
  if (IsBinaryPath(path)) return LoadDatasetBinary(path);
  return ReadCategoricalCsv(path);
}

Status SaveDataset(const CategoricalDataset& dataset,
                   const std::string& path) {
  if (IsBinaryPath(path)) return SaveDatasetBinary(dataset, path);
  return WriteCategoricalCsv(dataset, path);
}

Status WriteAssignmentCsv(const std::vector<uint32_t>& assignment,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "item,cluster\n";
  for (size_t item = 0; item < assignment.size(); ++item) {
    out << item << ',' << assignment[item] << '\n';
  }
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<uint32_t>> ReadAssignmentCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "item,cluster") {
    return Status::InvalidArgument(
        "'" + path + "' is not an assignment file (bad header)");
  }
  std::vector<uint32_t> assignment;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const auto fields = Split(Trim(line), ',');
    int64_t item = 0, cluster = 0;
    if (fields.size() != 2 || !ParseInt64(fields[0], &item) ||
        !ParseInt64(fields[1], &cluster) ||
        item != static_cast<int64_t>(assignment.size()) || cluster < 0) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_number) +
                                     " is malformed");
    }
    assignment.push_back(static_cast<uint32_t>(cluster));
  }
  if (assignment.empty()) {
    return Status::InvalidArgument("'" + path + "' contains no assignments");
  }
  return assignment;
}

/// Data / IO failure: exit code 1.
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Usage failure (bad flags, invalid spec combination): exit code 2, the
/// same code the usage strings return, so scripts can tell "you called me
/// wrong" from "your data is broken".
int FailUsage(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

// ---------------------------------------------------------------- generate --

int CmdGenerate(int argc, char** argv) {
  FlagSet flags("lshclust generate");
  int64_t items = 10000, attributes = 100, clusters = 1000;
  int64_t domain = 40000, seed = 1;
  std::string output = "dataset.lshc";
  flags.AddInt64("items", &items, "items to generate");
  flags.AddInt64("attributes", &attributes, "attributes per item");
  flags.AddInt64("clusters", &clusters, "ground-truth clusters");
  flags.AddInt64("domain", &domain, "category values per attribute");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddString("output", &output, "output path (.lshc binary or .csv)");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return FailUsage(parsed);

  ConjunctiveDataOptions options;
  options.num_items = static_cast<uint32_t>(items);
  options.num_attributes = static_cast<uint32_t>(attributes);
  options.num_clusters = static_cast<uint32_t>(clusters);
  options.domain_size = static_cast<uint32_t>(domain);
  options.seed = static_cast<uint64_t>(seed);
  auto dataset = GenerateConjunctiveRuleData(options);
  if (!dataset.ok()) return Fail(dataset.status());
  // CSV output needs string values; binary stores raw codes directly.
  if (!IsBinaryPath(output) && dataset->interner() == nullptr) {
    return Fail(Status::InvalidArgument(
        "the conjunctive generator emits raw codes; use a .lshc output "
        "path"));
  }
  const Status saved = SaveDataset(*dataset, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %u items x %u attributes (%u clusters) to %s\n",
              dataset->num_items(), dataset->num_attributes(),
              options.num_clusters, output.c_str());
  return 0;
}

// ----------------------------------------------------------------- cluster --

/// Shared tail of every cluster run: report, purity, assignment CSV.
int FinishCluster(const std::string& label, const ClusteringResult& result,
                  const std::vector<uint32_t>& labels,
                  const std::string& output) {
  std::printf("%s: %zu iterations (%s), cost %.0f, %.3fs total\n",
              label.c_str(), result.iterations.size(),
              result.converged ? "converged" : "iteration cap",
              result.final_cost, result.total_seconds);
  if (!labels.empty()) {
    auto purity = ComputePurity(result.assignment, labels);
    if (purity.ok()) std::printf("purity vs labels: %.4f\n", *purity);
  }
  const Status saved = WriteAssignmentCsv(result.assignment, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("assignment written to %s\n", output.c_str());
  return 0;
}

int CmdCluster(int argc, char** argv) {
  FlagSet flags("lshclust cluster");
  std::string input, output = "assignment.csv", method = "mh-kmodes";
  std::string algo, accel, save_model;
  int64_t k = 0, bands = 0, rows = 0, max_iterations = 100, seed = 42;
  int64_t threads = 1;
  double gamma = 1.0;
  flags.AddString("input", &input, "dataset path (.lshc or .csv)");
  flags.AddString("output", &output, "assignment CSV path");
  flags.AddString("method", &method,
                  "legacy shorthand: kmodes | mh-kmodes (superseded by "
                  "--algo/--accel)");
  flags.AddString("algo", &algo,
                  "algorithm family: kmodes | kmeans | kprototypes");
  flags.AddString("accel", &accel,
                  "candidate strategy: lsh | exhaustive | canopy "
                  "(default lsh)");
  flags.AddInt64("k", &k, "number of clusters");
  flags.AddInt64("bands", &bands, "LSH bands (0 = accelerator default)");
  flags.AddInt64("rows", &rows, "rows per band (0 = accelerator default)");
  flags.AddInt64("max-iters", &max_iterations, "iteration cap");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddInt64("threads", &threads,
                 "assignment worker threads (0 = all cores)");
  flags.AddDouble("gamma", &gamma,
                  "numeric-vs-categorical weight (kprototypes)");
  flags.AddString("save-model", &save_model,
                  "write the fitted model (centroids + LSH index) to this "
                  "path for `lshclust predict`");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return FailUsage(parsed);
  if (input.empty() || k <= 0) {
    std::fprintf(stderr, "usage: lshclust cluster --input=<file> --k=<n> "
                         "[--algo=kmodes|kmeans|kprototypes] "
                         "[--accel=lsh|exhaustive|canopy]\n");
    return 2;
  }
  if (bands < 0 || rows < 0 || threads < 0 || max_iterations < 0) {
    return FailUsage(Status::InvalidArgument(
        "--bands, --rows, --threads and --max-iters must be non-negative"));
  }

  // Resolve the (algo, accel) pair: --algo/--accel when given, the legacy
  // --method shorthand otherwise (kmodes = exhaustive K-Modes,
  // mh-kmodes = MinHash-accelerated K-Modes — unchanged behaviour and
  // output for existing invocations). An explicit --accel always wins;
  // --method only fills the gap, and the printed label keeps the method
  // name only when the method's accelerator actually ran.
  std::string label;
  if (algo.empty()) {
    std::string method_accel;
    if (method == "kmodes") {
      method_accel = "exhaustive";
    } else if (method == "mh-kmodes") {
      method_accel = "lsh";
    } else {
      std::fprintf(stderr,
                   "unknown --method '%s' (kmodes | mh-kmodes; use "
                   "--algo/--accel for the full matrix)\n",
                   method.c_str());
      return 2;
    }
    algo = "kmodes";
    if (accel.empty()) {
      accel = method_accel;
      label = method;
    }
  }
  if (accel.empty()) accel = "lsh";

  ClustererSpec spec;
  spec.engine.num_clusters = static_cast<uint32_t>(k);
  spec.engine.max_iterations = static_cast<uint32_t>(max_iterations);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.engine.num_threads = static_cast<uint32_t>(threads);
  if (algo == "kmodes") {
    spec.modality = Modality::kCategorical;
  } else if (algo == "kmeans") {
    spec.modality = Modality::kNumeric;
  } else if (algo == "kprototypes") {
    spec.modality = Modality::kMixed;
    spec.gamma = gamma;
  } else {
    std::fprintf(stderr, "unknown --algo '%s' (kmodes | kmeans | "
                         "kprototypes)\n",
                 algo.c_str());
    return 2;
  }
  if (accel == "exhaustive") {
    spec.accelerator = Accelerator::kExhaustive;
  } else if (accel == "canopy") {
    spec.accelerator = Accelerator::kCanopy;
  } else if (accel == "lsh") {
    spec.accelerator = spec.modality == Modality::kCategorical
                           ? Accelerator::kMinHash
                           : spec.modality == Modality::kNumeric
                                 ? Accelerator::kSimHash
                                 : Accelerator::kMixedConcat;
  } else {
    std::fprintf(stderr, "unknown --accel '%s' (lsh | exhaustive | "
                         "canopy)\n",
                 accel.c_str());
    return 2;
  }
  // --bands/--rows override the chosen accelerator's banding defaults
  // (the categorical half for mixed-concat); 0 keeps the default.
  const auto apply_banding = [&](BandingParams* params) {
    if (bands > 0) params->bands = static_cast<uint32_t>(bands);
    if (rows > 0) params->rows = static_cast<uint32_t>(rows);
  };
  apply_banding(&spec.minhash.banding);
  apply_banding(&spec.simhash.banding);
  apply_banding(&spec.mixed_index.categorical_banding);
  if (label.empty()) {
    label = algo + "/" + std::string(AcceleratorToString(spec.accelerator));
  }

  // Validate the full spec before touching the data: bad combinations are
  // usage errors (exit 2), reported without waiting for a dataset load.
  auto clusterer = Clusterer::Create(spec);
  if (!clusterer.ok()) return FailUsage(clusterer.status());

  Result<FitReport> report = Status::UnknownError("unset");
  std::vector<uint32_t> truth_labels;
  if (spec.modality == Modality::kCategorical) {
    auto dataset = LoadDataset(input);
    if (!dataset.ok()) return Fail(dataset.status());
    std::printf("loaded %u items x %u attributes from %s\n",
                dataset->num_items(), dataset->num_attributes(),
                input.c_str());
    if (dataset->has_labels()) truth_labels = dataset->labels();
    report = clusterer->Fit(*dataset);
  } else if (spec.modality == Modality::kNumeric) {
    if (IsBinaryPath(input)) {
      return FailUsage(Status::InvalidArgument(
          ".lshc files store categorical codes; --algo=kmeans needs a "
          "numeric CSV"));
    }
    auto dataset = ReadNumericCsv(input);
    if (!dataset.ok()) return Fail(dataset.status());
    std::printf("loaded %u items x %u dimensions from %s\n",
                dataset->num_items(), dataset->dimensions(), input.c_str());
    if (dataset->has_labels()) truth_labels = dataset->labels();
    report = clusterer->Fit(*dataset);
  } else {
    if (IsBinaryPath(input)) {
      return FailUsage(Status::InvalidArgument(
          ".lshc files store categorical codes; --algo=kprototypes needs "
          "a mixed CSV"));
    }
    auto dataset = ReadMixedCsv(input);
    if (!dataset.ok()) return Fail(dataset.status());
    std::printf("loaded %u items (%u categorical + %u numeric attributes) "
                "from %s\n",
                dataset->num_items(), dataset->num_categorical(),
                dataset->num_numeric(), input.c_str());
    if (dataset->has_labels()) truth_labels = dataset->labels();
    report = clusterer->Fit(*dataset);
  }
  if (!report.ok()) {
    // k > n and friends are usage errors too; IO problems are not.
    return report.status().IsInvalidArgument() ? FailUsage(report.status())
                                               : Fail(report.status());
  }
  if (!save_model.empty()) {
    auto snapshot = clusterer->Snapshot();
    if (!snapshot.ok()) return Fail(snapshot.status());
    const Status saved = serving::SaveFrozenModel(**snapshot, save_model);
    if (!saved.ok()) return Fail(saved);
    std::printf("model written to %s\n", save_model.c_str());
  }
  return FinishCluster(label, report->result, truth_labels, output);
}

// ----------------------------------------------------------------- predict --

int CmdPredict(int argc, char** argv) {
  FlagSet flags("lshclust predict");
  std::string model_path, input, output = "assignment.csv";
  flags.AddString("model", &model_path,
                  "model file written by `lshclust cluster --save-model`");
  flags.AddString("input", &input, "query dataset path (.lshc or .csv)");
  flags.AddString("output", &output, "assignment CSV path");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return FailUsage(parsed);
  if (model_path.empty() || input.empty()) {
    std::fprintf(stderr,
                 "usage: lshclust predict --model=<file> --input=<file> "
                 "[--output=<file>]\n");
    return 2;
  }

  auto clusterer = Clusterer::FromSnapshot(model_path);
  if (!clusterer.ok()) return Fail(clusterer.status());
  const ClustererSpec& spec = clusterer->spec();
  std::printf("loaded %s/%s model (k=%u) from %s\n",
              std::string(ModalityToString(spec.modality)).c_str(),
              std::string(AcceleratorToString(spec.accelerator)).c_str(),
              spec.engine.num_clusters, model_path.c_str());

  Result<std::vector<uint32_t>> routed = Status::UnknownError("unset");
  if (spec.modality == Modality::kCategorical ||
      spec.modality == Modality::kTextBinarized) {
    auto dataset = LoadDataset(input);
    if (!dataset.ok()) return Fail(dataset.status());
    routed = clusterer->PredictRouted(*dataset);
  } else if (spec.modality == Modality::kNumeric) {
    if (IsBinaryPath(input)) {
      return FailUsage(Status::InvalidArgument(
          ".lshc files store categorical codes; this numeric model needs a "
          "numeric CSV"));
    }
    auto dataset = ReadNumericCsv(input);
    if (!dataset.ok()) return Fail(dataset.status());
    routed = clusterer->PredictRouted(*dataset);
  } else {
    if (IsBinaryPath(input)) {
      return FailUsage(Status::InvalidArgument(
          ".lshc files store categorical codes; this mixed model needs a "
          "mixed CSV"));
    }
    auto dataset = ReadMixedCsv(input);
    if (!dataset.ok()) return Fail(dataset.status());
    routed = clusterer->PredictRouted(*dataset);
  }
  if (!routed.ok()) {
    return routed.status().IsInvalidArgument() ? FailUsage(routed.status())
                                               : Fail(routed.status());
  }
  const Status saved = WriteAssignmentCsv(*routed, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("routed %zu items; assignment written to %s\n", routed->size(),
              output.c_str());
  return 0;
}

// ---------------------------------------------------------------- evaluate --

int CmdEvaluate(int argc, char** argv) {
  FlagSet flags("lshclust evaluate");
  std::string dataset_path, assignment_path;
  flags.AddString("dataset", &dataset_path, "labeled dataset path");
  flags.AddString("assignment", &assignment_path, "assignment CSV path");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return FailUsage(parsed);
  if (dataset_path.empty() || assignment_path.empty()) {
    std::fprintf(stderr, "usage: lshclust evaluate --dataset=<file> "
                         "--assignment=<file>\n");
    return 2;
  }

  auto dataset = LoadDataset(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  if (!dataset->has_labels()) {
    return Fail(Status::InvalidArgument("dataset carries no labels"));
  }
  auto assignment = ReadAssignmentCsv(assignment_path);
  if (!assignment.ok()) return Fail(assignment.status());
  if (assignment->size() != dataset->num_items()) {
    return Fail(Status::InvalidArgument(
        "assignment covers " + std::to_string(assignment->size()) +
        " items, dataset has " + std::to_string(dataset->num_items())));
  }

  auto table = ContingencyTable::Build(*assignment, dataset->labels());
  if (!table.ok()) return Fail(table.status());
  std::printf("items:   %llu\n",
              static_cast<unsigned long long>(table->total()));
  std::printf("purity:  %.4f\n", Purity(*table));
  std::printf("NMI:     %.4f\n", NormalizedMutualInformation(*table));
  std::printf("ARI:     %.4f\n", AdjustedRandIndex(*table));
  return 0;
}

// ----------------------------------------------------------------- inspect --

int CmdInspect(int argc, char** argv) {
  FlagSet flags("lshclust inspect");
  std::string input;
  int64_t cluster_size = 10;
  double max_error = 0.05;
  flags.AddString("input", &input, "dataset path (.lshc or .csv)");
  flags.AddInt64("cluster-size", &cluster_size,
                 "assumed minimum cluster size for banding advice");
  flags.AddDouble("max-error", &max_error,
                  "tolerated shortlist-miss probability");
  const Status parsed = flags.Parse(argc, argv);
  if (parsed.IsAlreadyExists()) return 0;
  if (!parsed.ok()) return FailUsage(parsed);
  if (input.empty()) {
    std::fprintf(stderr, "usage: lshclust inspect --input=<file>\n");
    return 2;
  }

  auto dataset = LoadDataset(input);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("items:       %u\n", dataset->num_items());
  std::printf("attributes:  %u\n", dataset->num_attributes());
  std::printf("codes:       %u\n", dataset->num_codes());
  std::printf("labels:      %s\n", dataset->has_labels() ? "yes" : "no");
  std::printf("presence:    %s\n",
              dataset->has_absence_semantics() ? "sparse (absent values)"
                                               : "dense");
  if (dataset->has_labels()) {
    std::vector<bool> seen;
    for (const uint32_t label : dataset->labels()) {
      if (label >= seen.size()) seen.resize(label + 1, false);
      seen[label] = true;
    }
    size_t distinct = 0;
    for (const bool present : seen) distinct += present ? 1 : 0;
    std::printf("classes:     %zu\n", distinct);
  }

  BandingConstraints constraints;
  constraints.max_error = max_error;
  auto advice = RecommendBanding(dataset->num_attributes(),
                                 static_cast<uint32_t>(cluster_size),
                                 constraints);
  if (advice.ok()) {
    std::printf("suggested banding: %ub %ur (%u hashes, error bound "
                "%.4f, threshold similarity %.4f)\n",
                advice->params.bands, advice->params.rows,
                advice->num_hashes, advice->error_bound,
                advice->threshold_similarity);
  } else {
    std::printf("no banding within budget meets error %.3f\n", max_error);
  }
  return 0;
}

int Usage() {
  std::fputs(
      "usage: lshclust <command> [flags]\n"
      "commands:\n"
      "  generate   write a synthetic conjunctive-rule dataset\n"
      "  cluster    cluster a dataset with K-Modes or MH-K-Modes\n"
      "             (--algo also selects kmeans | kprototypes;\n"
      "              --save-model persists the fitted model)\n"
      "  predict    route a dataset through a saved model (no refit)\n"
      "  evaluate   score an assignment against dataset labels\n"
      "  inspect    print dataset shape and banding advice\n"
      "run `lshclust <command> --help` for the command's flags\n",
      stderr);
  return 2;
}

}  // namespace

int RunCli(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];
  // Shift argv so each command's FlagSet sees its own flags.
  if (command == "generate") return CmdGenerate(argc - 1, argv + 1);
  if (command == "cluster") return CmdCluster(argc - 1, argv + 1);
  if (command == "predict") return CmdPredict(argc - 1, argv + 1);
  if (command == "evaluate") return CmdEvaluate(argc - 1, argv + 1);
  if (command == "inspect") return CmdInspect(argc - 1, argv + 1);
  return Usage();
}

}  // namespace lshclust
