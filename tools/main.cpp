// Entry point of the `lshclust` command-line tool; the logic lives in
// cli.cpp so the test suite can drive it in-process.

#include "tools/cli.h"

int main(int argc, char** argv) { return lshclust::RunCli(argc, argv); }
