#pragma once

/// \file cli.h
/// \brief The `lshclust` command-line tool, as a library so tests can
/// drive it in-process.
///
/// Subcommands:
///   generate  — write a synthetic conjunctive-rule dataset to disk
///   cluster   — cluster a dataset file with K-Modes or MH-K-Modes and
///               write the assignment (--save-model persists the fitted
///               model via persist/model_io.h)
///   predict   — warm-start from a saved model file and route a dataset
///               through its retained LSH index, no refit
///   evaluate  — score an assignment against the dataset's labels
///   inspect   — print dataset shape and banding recommendations
///
/// Dataset files are either the binary format of data/serialize.h
/// (".lshc") or CSV (anything else). Assignments are two-column CSV
/// ("item,cluster").

namespace lshclust {

/// Runs one CLI invocation; returns the process exit code (0 success,
/// 1 operational failure, 2 usage error).
int RunCli(int argc, char** argv);

}  // namespace lshclust
