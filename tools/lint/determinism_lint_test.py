#!/usr/bin/env python3
"""Tests for determinism_lint.py: every planted violation in testdata/ must
be caught, justified suppressions must silence, and the in-tree fp-contract
check must hold against the real CMakeLists.txt."""

import os
import subprocess
import sys
import unittest

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(LINT_DIR))
TESTDATA = os.path.join(LINT_DIR, "testdata")

sys.path.insert(0, LINT_DIR)
import determinism_lint  # noqa: E402


def rules_by_line(findings):
    return {(f.line, f.rule) for f in findings}


class FixtureViolationsTest(unittest.TestCase):
    """Each planted violation fires, each clean construct stays silent."""

    @classmethod
    def setUpClass(cls):
        cls.cpp_path = os.path.join(TESTDATA, "violations.cpp")
        cls.cpp = determinism_lint.lint_file(cls.cpp_path, REPO_ROOT)
        cls.h_path = os.path.join(TESTDATA, "violations.h")
        cls.h = determinism_lint.lint_file(cls.h_path, REPO_ROOT)
        with open(cls.cpp_path) as handle:
            cls.cpp_lines = handle.read().splitlines()
        with open(cls.h_path) as handle:
            cls.h_lines = handle.read().splitlines()

    def planted(self, lines, marker):
        """1-based line numbers carrying a `VIOLATION <rule>` marker."""
        return [i + 1 for i, line in enumerate(lines)
                if f"VIOLATION {marker}" in line]

    def assert_fires(self, findings, lines, rule):
        hits = rules_by_line(findings)
        for line_no in self.planted(lines, rule):
            self.assertIn((line_no, rule), hits,
                          f"line {line_no}: planted [{rule}] not caught")

    def test_rng_violations_fire(self):
        self.assert_fires(self.cpp, self.cpp_lines, "rng")

    def test_unordered_iteration_fires(self):
        self.assert_fires(self.cpp, self.cpp_lines, "unordered-iter")

    def test_reduce_fires(self):
        self.assert_fires(self.cpp, self.cpp_lines, "reduce")

    def test_atomic_float_fires(self):
        self.assert_fires(self.cpp, self.cpp_lines, "atomic-float")

    def test_nodiscard_fires_in_headers(self):
        self.assert_fires(self.h, self.h_lines, "nodiscard")

    def test_justified_suppression_silences(self):
        # The suppressed loop inside SuppressedUnorderedIteration: no
        # unordered-iter finding may point between its markers.
        start = next(i + 1 for i, l in enumerate(self.cpp_lines)
                     if "SuppressedUnorderedIteration" in l)
        end = start + 7
        for finding in self.cpp:
            if finding.rule == "unordered-iter":
                self.assertFalse(
                    start <= finding.line <= end,
                    f"justified suppression ignored at line {finding.line}")

    def test_unjustified_suppression_is_itself_a_finding(self):
        bad = next(i + 1 for i, l in enumerate(self.cpp_lines)
                   if "lint:ordered-ok" in l and "(" not in
                   l.split("lint:ordered-ok", 1)[1][:1])
        self.assertTrue(
            any(f.line == bad and "justification" in f.message
                for f in self.cpp),
            "suppression without justification must be reported")

    def test_comments_and_strings_do_not_fire(self):
        prose = [i + 1 for i, l in enumerate(self.cpp_lines)
                 if "kNotCode" in l or "inside a comment" in l]
        for finding in self.cpp:
            self.assertNotIn(finding.line, prose,
                             f"false positive on prose/string: {finding}")

    def test_annotated_declarations_stay_silent(self):
        annotated = [i + 1 for i, l in enumerate(self.h_lines)
                     if "AnnotatedInline" in l
                     or "AnnotatedPrecedingLine" in l]
        for finding in self.h:
            if finding.rule == "nodiscard":
                self.assertNotIn(finding.line, annotated)


class DatagenExemptionTest(unittest.TestCase):
    def test_rng_allowed_under_datagen(self):
        # The same rand() fixture linted as if it lived in src/datagen/
        # must produce no rng findings.
        fake_path = os.path.join(REPO_ROOT, "src", "datagen",
                                 "violations.cpp")
        with open(os.path.join(TESTDATA, "violations.cpp")) as handle:
            content = handle.read()
        import tempfile
        os.makedirs(os.path.dirname(fake_path), exist_ok=True)
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", dir=os.path.dirname(fake_path),
                delete=False) as handle:
            handle.write(content)
            temp_path = handle.name
        try:
            findings = determinism_lint.lint_file(temp_path, REPO_ROOT)
            self.assertFalse([f for f in findings if f.rule == "rng"],
                             "datagen/ exemption not honored")
        finally:
            os.unlink(temp_path)


class FpContractTest(unittest.TestCase):
    def test_tree_kernel_tus_all_carry_the_flag(self):
        self.assertEqual(determinism_lint.lint_fp_contract(REPO_ROOT), [])

    def test_missing_flag_detected(self):
        # A doctored CMakeLists missing the flag on one kernel TU.
        import tempfile
        with tempfile.TemporaryDirectory() as fake_root:
            simd = os.path.join(fake_root, "src", "simd")
            os.makedirs(simd)
            with open(os.path.join(simd, "kernels_scalar.cpp"), "w") as f:
                f.write("// kernel tu\n")
            with open(os.path.join(fake_root, "CMakeLists.txt"), "w") as f:
                f.write('set_source_files_properties('
                        'src/simd/kernels_scalar.cpp PROPERTIES '
                        'COMPILE_OPTIONS "-fno-tree-vectorize")\n')
            findings = determinism_lint.lint_fp_contract(fake_root)
            self.assertTrue(findings and
                            findings[0].rule == "fp-contract")

    def test_unconfigured_kernel_tu_detected(self):
        import tempfile
        with tempfile.TemporaryDirectory() as fake_root:
            simd = os.path.join(fake_root, "src", "simd")
            os.makedirs(simd)
            with open(os.path.join(simd, "kernels_newtier.cpp"), "w") as f:
                f.write("// kernel tu\n")
            with open(os.path.join(fake_root, "CMakeLists.txt"), "w") as f:
                f.write("# no per-TU properties at all\n")
            findings = determinism_lint.lint_fp_contract(fake_root)
            self.assertTrue(findings and
                            "no set_source_files_properties"
                            in findings[0].message)


class WholeTreeTest(unittest.TestCase):
    def test_src_tree_is_clean(self):
        """The shipped tree must lint clean — this is the CI gate."""
        result = subprocess.run(
            [sys.executable,
             os.path.join(LINT_DIR, "determinism_lint.py"),
             "--root", REPO_ROOT],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0,
                         "determinism lint found violations in src/:\n" +
                         result.stdout + result.stderr)

    def test_fixture_file_fails_via_cli(self):
        """Planted violations demonstrably reject through the CLI."""
        result = subprocess.run(
            [sys.executable,
             os.path.join(LINT_DIR, "determinism_lint.py"),
             "--root", REPO_ROOT,
             os.path.join(TESTDATA, "violations.cpp")],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 1)
        self.assertIn("[rng]", result.stdout)


if __name__ == "__main__":
    unittest.main()
