#pragma once

// Fixture header: nodiscard-rule cases for determinism_lint_test.py.

#include <string>

namespace lintfixture {

class Status {};

// [nodiscard] missing on a Status-returning declaration.
Status PlantedMissingNodiscard(const std::string& path);  // VIOLATION nodiscard

// Annotated inline: must NOT fire.
[[nodiscard]] Status AnnotatedInline(const std::string& path);

// Annotated on the preceding line: must NOT fire.
[[nodiscard]]
Status AnnotatedPrecedingLine(const std::string& path);

// An inline definition is a declaration too: fires without the attribute.
inline Status PlantedInlineDefinition() {  // VIOLATION nodiscard
  return Status{};  // a return statement itself must NOT fire
}

}  // namespace lintfixture
