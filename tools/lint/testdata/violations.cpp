// Fixture: every block below plants one determinism-lint violation. The
// lint's own test (determinism_lint_test.py) asserts each rule fires here
// at the marked line — this file is never compiled or linted in tree mode
// (testdata/ is outside src/).

#include <atomic>
#include <cstdlib>
#include <ctime>
#include <numeric>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// [rng] rand() in library code.
int PlantedRand() { return rand(); }  // VIOLATION rng

// [rng] std::random_device seeding.
unsigned PlantedRandomDevice() {
  std::random_device device;  // VIOLATION rng
  return device();
}

// [rng] time-seeded RNG.
void PlantedTimeSeed() {
  srand(static_cast<unsigned>(time(nullptr)));  // VIOLATION rng (x2: srand+time)
}

// [unordered-iter] range-for over a declared unordered map.
int PlantedUnorderedIteration() {
  std::unordered_map<int, int> counts = {{1, 2}};
  int sum = 0;
  for (const auto& entry : counts) {  // VIOLATION unordered-iter
    sum += entry.second;
  }
  return sum;
}

// [unordered-iter] explicit iterator walk.
int PlantedUnorderedBegin() {
  std::unordered_set<int> seen = {1, 2, 3};
  return *seen.begin();  // VIOLATION unordered-iter
}

// [unordered-iter] suppressed WITH justification: must NOT fire.
int SuppressedUnorderedIteration() {
  std::unordered_map<int, int> counts = {{1, 2}};
  int max_key = 0;
  // lint:ordered-ok(max of keys is order-independent)
  for (const auto& entry : counts) {
    max_key = entry.first > max_key ? entry.first : max_key;
  }
  return max_key;
}

// [unordered-iter] suppression WITHOUT justification: fires (as the
// missing-justification error).
int BadSuppression() {
  std::unordered_set<int> seen = {1};
  int sum = 0;
  for (int value : seen) {  // lint:ordered-ok
    sum += value;
  }
  return sum;
}

// [reduce] std::reduce accumulation.
double PlantedReduce(const std::vector<double>& values) {
  return std::reduce(values.begin(), values.end());  // VIOLATION reduce
}

// [atomic-float] concurrent FP accumulation slot.
std::atomic<double> planted_total{0.0};  // VIOLATION atomic-float

// String literals and comments must not fire:
// "std::reduce inside a comment", rand() in prose.
const char* kNotCode = "std::random_device rand() std::reduce(";
