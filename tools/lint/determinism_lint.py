#!/usr/bin/env python3
"""Determinism lint: static checks for the bit-identity contract.

Every performance claim this reproduction makes rests on assignments being
bit-identical across threads x shards x SIMD tiers x save/load. The
sanitizer and parity jobs verify that contract *dynamically* on the
hardware CI happens to run; this lint rejects the code patterns that break
it on hardware we don't run, before they compile:

  rng            rand() / std::random_device / srand / time-seeded RNG
                 outside src/datagen/ (data generators may be freely
                 seeded; library code must take explicit seeds).
  unordered-iter iteration over std::unordered_{map,set,multimap,multiset}
                 — bucket order is implementation- and size-dependent, so
                 any result that observes it is not reproducible.
                 Suppressible where the iteration provably cannot affect
                 results (e.g. feeding a re-sorted container):
                 `// lint:ordered-ok(<justification>)`.
  reduce         std::reduce / std::transform_reduce — unspecified
                 operation order; floating-point accumulation through them
                 is run-to-run nondeterministic. Use std::accumulate or an
                 explicitly ordered loop.
  atomic-float   std::atomic<float/double> — concurrent fetch-add
                 accumulation commits in scheduling order; FP addition is
                 not associative, so the sum depends on thread timing.
  fp-contract    every SIMD kernel TU (src/simd/kernels_*.cpp) must be
                 compiled with -ffp-contract=off in CMakeLists.txt, or a
                 tier built with FMA contraction rounds differently from
                 the tiers built without it.
  nodiscard      function declarations in src/ headers returning Status
                 must carry [[nodiscard]] — a silently dropped Status is
                 how a failed load/validation turns into serving garbage.
                 (Result<T> is [[nodiscard]] at class level already.)

Usage:
  tools/lint/determinism_lint.py [--root DIR] [paths...]

With no paths, lints src/ under --root (default: the repo containing this
script). Exits 0 when clean, 1 with one `file:line: [rule] message` per
finding otherwise. Suppression: append `// lint:ordered-ok(reason)` — or
the generic `// NOLINT-DETERMINISM(reason)` — to the flagged line or the
line directly above it; an empty reason is itself an error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

UNORDERED_TYPES = r"std::unordered_(?:multi)?(?:map|set)"

# Matches declarations of unordered-container variables/members and
# captures the declared name:  std::unordered_map<K, V> name  (possibly
# with nesting in the template args).
UNORDERED_DECL_RE = re.compile(
    UNORDERED_TYPES + r"\s*<[^;{}()]*>\s+(\w+)\s*[;={(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(.*)\)\s*\{?\s*$")

RNG_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::time\s*\(|(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time()-seeding"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)"
                r"[\w:]*\s*::\s*now\s*\(\)[^;]*(?:seed|mt19937|minstd|rng)",
                re.IGNORECASE),
     "clock-seeded RNG"),
]

REDUCE_RE = re.compile(r"\bstd::(?:transform_)?reduce\s*[<(]")
ATOMIC_FLOAT_RE = re.compile(r"\bstd::atomic\s*<\s*(?:float|double|long double)\s*>")

# A Status-returning declaration in a header: optional leading qualifiers,
# `Status Name(`. Skips control flow (`return Status...`), constructions,
# and qualified uses; see nodiscard_findings().
STATUS_DECL_RE = re.compile(
    r"^\s*(?:LSHC_\w+\s+)*(?:virtual\s+|static\s+|friend\s+|inline\s+|constexpr\s+)*"
    r"(?:::)?\s*Status\s+(\w+)\s*\(")

SUPPRESS_RE = re.compile(
    r"//\s*(?:lint:ordered-ok|NOLINT-DETERMINISM)\s*(?:\(([^)]*)\))?")

KERNEL_TU_RE = re.compile(r"src/simd/kernels_\w+\.cpp")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def suppression(lines: list[str], index: int) -> tuple[bool, str | None]:
    """Suppressed on this line or the one directly above? Returns
    (suppressed, error) — error is set for a suppression without a
    justification."""
    for probe in (index, index - 1):
        if probe < 0:
            continue
        match = SUPPRESS_RE.search(lines[probe])
        if match:
            reason = (match.group(1) or "").strip()
            if not reason:
                return True, ("suppression comment needs a justification: "
                              "// lint:ordered-ok(<why this iteration cannot "
                              "affect results>)")
            return True, None
    return False, None


def strip_strings(line: str) -> str:
    """Blank out string/char literals so patterns inside them don't fire."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def lint_file(path: str, repo_root: str) -> list[Finding]:
    findings: list[Finding] = []
    rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            raw_lines = handle.read().splitlines()
    except OSError as error:
        return [Finding(path, 0, "io", f"cannot read: {error}")]

    in_datagen = "/datagen/" in f"/{rel}"
    is_header = rel.endswith(".h")

    # Pass 1: names declared with unordered container types in this file.
    unordered_names: set[str] = set()
    for raw in raw_lines:
        for match in UNORDERED_DECL_RE.finditer(strip_strings(raw)):
            unordered_names.add(match.group(1))

    in_block_comment = False
    for index, raw in enumerate(raw_lines):
        line_no = index + 1
        code = strip_strings(raw)

        # Strip comments (tracking /* */ across lines) so commented-out
        # code and prose don't fire.
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        line_comment = code.find("//")
        if line_comment >= 0:
            code = code[:line_comment]
        if not code.strip():
            continue

        def report(rule: str, message: str, *, suppressible: bool = False):
            if suppressible:
                suppressed, error = suppression(raw_lines, index)
                if suppressed:
                    if error:
                        findings.append(Finding(path, line_no, rule, error))
                    return
            findings.append(Finding(path, line_no, rule, message))

        # --- rng ---------------------------------------------------------
        if not in_datagen:
            for pattern, what in RNG_PATTERNS:
                if pattern.search(code):
                    report("rng",
                           f"{what} in library code: results must come from "
                           "explicit caller-provided seeds (free seeding is "
                           "allowed under src/datagen/ only)")

        # --- unordered iteration -----------------------------------------
        range_for = RANGE_FOR_RE.search(code)
        if range_for:
            target = range_for.group(1)
            direct = re.search(UNORDERED_TYPES, target)
            named = any(re.search(rf"\b{re.escape(name)}\b", target)
                        for name in unordered_names)
            if direct or named:
                report("unordered-iter",
                       "iteration over an unordered container: bucket order "
                       "is not deterministic, so anything accumulated or "
                       "emitted in this order breaks bit-identity; iterate "
                       "a sorted copy, or suppress with "
                       "// lint:ordered-ok(<justification>) if provably "
                       "order-free", suppressible=True)
        elif unordered_names and re.search(
                rf"\b({'|'.join(re.escape(n) for n in unordered_names)})"
                r"\s*\.\s*(begin|cbegin)\s*\(", code):
            report("unordered-iter",
                   "explicit iterator walk of an unordered container (same "
                   "hazard as a range-for)", suppressible=True)

        # --- std::reduce --------------------------------------------------
        if REDUCE_RE.search(code):
            report("reduce",
                   "std::reduce / std::transform_reduce has unspecified "
                   "operation order — use std::accumulate or an explicitly "
                   "ordered loop", suppressible=True)

        # --- atomic float accumulation -------------------------------------
        if ATOMIC_FLOAT_RE.search(code):
            report("atomic-float",
                   "std::atomic<floating-point> accumulates in scheduling "
                   "order; FP addition is not associative, so concurrent "
                   "updates are run-to-run nondeterministic",
                   suppressible=True)

        # --- nodiscard on Status declarations -------------------------------
        if is_header and not in_datagen:
            decl = STATUS_DECL_RE.match(code)
            if decl and "[[nodiscard]]" not in code \
                    and "[[nodiscard]]" not in (raw_lines[index - 1] if index else ""):
                report("nodiscard",
                       f"Status-returning declaration '{decl.group(1)}' "
                       "missing [[nodiscard]]: a dropped Status silently "
                       "swallows the error it reports", suppressible=True)

    return findings


def lint_fp_contract(repo_root: str) -> list[Finding]:
    """Every kernel TU must get -ffp-contract=off in CMakeLists.txt."""
    findings: list[Finding] = []
    cmake_path = os.path.join(repo_root, "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as handle:
            cmake = handle.read()
    except OSError:
        return findings  # linting a subtree without the root build file

    simd_dir = os.path.join(repo_root, "src", "simd")
    if not os.path.isdir(simd_dir):
        return findings
    kernel_tus = sorted(
        f"src/simd/{name}" for name in os.listdir(simd_dir)
        if re.fullmatch(r"kernels_\w+\.cpp", name))

    # Count how many set_source_files_properties(<tu> ...) blocks carry the
    # flag. Each TU appears in two platform branches; require the flag in
    # every block that configures it.
    for tu in kernel_tus:
        blocks = re.findall(
            r"set_source_files_properties\(\s*" + re.escape(tu) +
            r"\s+PROPERTIES\s+COMPILE_OPTIONS\s+\"([^\"]*)\"",
            cmake)
        if not blocks:
            findings.append(Finding(
                cmake_path, 0, "fp-contract",
                f"{tu}: no set_source_files_properties(... COMPILE_OPTIONS) "
                "block found — kernel TUs must be compiled with "
                "-ffp-contract=off for cross-tier FP bit-identity"))
            continue
        for options in blocks:
            if "-ffp-contract=off" not in options:
                findings.append(Finding(
                    cmake_path, 0, "fp-contract",
                    f"{tu}: a COMPILE_OPTIONS block ('{options}') lacks "
                    "-ffp-contract=off — an FMA-contracted tier rounds "
                    "differently from the uncontracted ones"))
    return findings


def collect_paths(root: str, arguments: list[str]) -> list[str]:
    if arguments:
        paths: list[str] = []
        for argument in arguments:
            if os.path.isdir(argument):
                for directory, _, names in os.walk(argument):
                    paths.extend(os.path.join(directory, n) for n in names
                                 if n.endswith((".h", ".cpp", ".cc", ".hpp")))
            else:
                paths.append(argument)
        return sorted(paths)
    source_root = os.path.join(root, "src")
    paths = []
    for directory, _, names in os.walk(source_root):
        paths.extend(os.path.join(directory, n) for n in names
                     if n.endswith((".h", ".cpp", ".cc", ".hpp")))
    return sorted(paths)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Determinism lint for the bit-identity contract.")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "<root>/src)")
    options = parser.parse_args()

    root = options.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    findings: list[Finding] = []
    for path in collect_paths(root, options.paths):
        findings.extend(lint_file(path, root))
    if not options.paths:  # whole-tree mode includes the build-flag check
        findings.extend(lint_fp_contract(root))

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding.render(root))
    if findings:
        print(f"determinism lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
