/// \file model_inspect.cpp
/// \brief Dumps a model file written by `lshclust cluster --save-model` /
/// serving::SaveFrozenModel: the header + table of contents (section ids,
/// offsets, sizes, checksums), then the decoded model's shape and the
/// banded index's bucket occupancy. Exit 0 when the file is fully intact,
/// 1 on any error or checksum mismatch, 2 on usage errors — so CI can use
/// it as a corruption smoke test on saved artifacts.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "persist/model_io.h"

namespace {

using lshclust::persist::DecodedModel;
using lshclust::persist::ModelFamilyKind;
using lshclust::persist::ModelFileInfo;
using lshclust::persist::ModelModality;

const char* ModalityName(ModelModality modality) {
  switch (modality) {
    case ModelModality::kCategorical:
      return "categorical";
    case ModelModality::kNumeric:
      return "numeric";
    case ModelModality::kMixed:
      return "mixed";
  }
  return "unknown";
}

const char* FamilyName(ModelFamilyKind family) {
  switch (family) {
    case ModelFamilyKind::kNone:
      return "none (exhaustive)";
    case ModelFamilyKind::kMinHash:
      return "minhash";
    case ModelFamilyKind::kSimHash:
      return "simhash";
    case ModelFamilyKind::kMixedConcat:
      return "mixed-concat";
  }
  return "unknown";
}

/// Header + TOC dump. Returns whether every section checksum matched.
bool PrintFileInfo(const ModelFileInfo& info) {
  std::printf("format version: %u\n", info.format_version);
  std::printf("file size:      %" PRIu64 " bytes\n", info.file_size);
  std::printf("sections:       %zu\n", info.sections.size());
  std::printf("  %-4s %-12s %10s %12s %10s  %s\n", "id", "name", "offset",
              "size", "crc32", "check");
  bool all_ok = true;
  for (const auto& section : info.sections) {
    std::printf("  %-4u %-12s %10" PRIu64 " %12" PRIu64 "   0x%08x  %s\n",
                section.id, lshclust::persist::SectionName(section.id),
                section.offset, section.size, section.crc32,
                section.crc_ok ? "ok" : "MISMATCH");
    all_ok = all_ok && section.crc_ok;
  }
  return all_ok;
}

void PrintModel(const DecodedModel& model) {
  std::printf("\nmodality:       %s\n", ModalityName(model.modality));
  std::printf("family:         %s\n", FamilyName(model.family));
  std::printf("clusters:       %u\n", model.num_clusters);
  if (model.modality == ModelModality::kMixed) {
    std::printf("shape:          %u categorical + %u numeric attributes\n",
                model.shape_primary, model.shape_secondary);
    std::printf("gamma:          %g\n", model.gamma);
  } else if (model.modality == ModelModality::kNumeric) {
    std::printf("shape:          %u dimensions\n", model.shape_primary);
  } else {
    std::printf("shape:          %u attributes\n", model.shape_primary);
  }
  if (!model.has_index) return;

  const auto& raw = model.index_raw;
  std::printf("\nindex:          %u items x %zu bands\n", raw.num_items,
              raw.bands.size());
  size_t buckets = 0, largest = 0;
  uint32_t signature_width = 0;
  for (const auto& band : raw.bands) {
    buckets += band.bucket_keys.size();
    signature_width += band.rows;
    for (size_t b = 0; b + 1 < band.bucket_offsets.size(); ++b) {
      largest = std::max(
          largest, size_t{band.bucket_offsets[b + 1] - band.bucket_offsets[b]});
    }
  }
  std::printf("buckets:        %zu total", buckets);
  if (buckets > 0 && !raw.bands.empty()) {
    std::printf(" (avg occupancy %.2f, largest %zu)",
                static_cast<double>(raw.num_items) *
                    static_cast<double>(raw.bands.size()) /
                    static_cast<double>(buckets),
                largest);
  }
  std::printf("\nsignature:      %u hashes\n", signature_width);
  if (model.has_sketches) {
    std::printf("sketches:       %u bits/item, hamming cutoff %" PRIu64 "\n",
                model.sketch_width, model.sketch_max_hamming);
  } else {
    std::printf("sketches:       none\n");
  }
  std::printf("assignment:     %zu items\n", model.fit_assignment.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: model_inspect <model-file>\n");
    return 2;
  }
  const std::string path = argv[1];

  auto info = lshclust::persist::InspectModelFile(path);
  if (!info.ok()) {
    std::fprintf(stderr, "error: %s\n", info.status().ToString().c_str());
    return 1;
  }
  const bool checksums_ok = PrintFileInfo(*info);

  auto model = lshclust::persist::DecodeModelFile(path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  PrintModel(*model);
  return checksums_ok ? 0 : 1;
}
